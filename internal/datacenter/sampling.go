package datacenter

import (
	"energysched/internal/cluster"
	"energysched/internal/obs/series"
)

// SampleAt builds one accounting sample as of virtual time t — the
// paper's evaluation quantities (power draw, cumulative energy, SLA
// fulfillment, utilization, node counts, migration churn) plus the
// per-node-class breakdown — WITHOUT mutating any simulation state.
// Like ReportAt, purity is load-bearing: samples are taken from the
// housekeeping tick of live runs, so a sample that split a float
// integration interval or bumped an epoch would break the
// byte-identity contract between observed and unobserved runs.
func (s *Simulation) SampleAt(t float64) series.Sample {
	smp := series.Sample{
		T:          t,
		SLA:        s.satAgg.Mean(),
		Queue:      len(s.queue),
		Migrations: s.migrations,
		Completed:  s.completed,
	}

	// Per-class breakdown, in the class declaration order of the
	// cluster layout. Nodes are laid out class by class, so a
	// last-class cache resolves almost every node without touching
	// the name map — SampleAt runs on every housekeeping tick of a
	// sampled fleet, and at chaos scale (10k nodes) the per-node map
	// lookup dominated its cost. The fleet-wide node counts fall out
	// of the same pass.
	idx := make(map[*cluster.Class]int, 4)
	var classes []series.ClassSample
	var lastClass *cluster.Class
	var lastIdx int
	var capOnline, reserved float64
	for _, rt := range s.rt {
		n := rt.node
		i := lastIdx
		if n.Class != lastClass {
			var ok bool
			if i, ok = idx[n.Class]; !ok {
				i = len(classes)
				idx[n.Class] = i
				classes = append(classes, series.ClassSample{Class: n.Class.Name})
			}
			lastClass, lastIdx = n.Class, i
		}
		c := &classes[i]
		w := rt.meter.CurrentWatts()
		k := rt.meter.KWhAt(t)
		c.Watts += w
		c.KWh += k
		smp.Watts += w
		smp.KWh += k
		switch n.State {
		case cluster.On:
			c.On++
			if n.Working() {
				c.Working++
				smp.Working++
			}
			smp.On++
			capOnline += n.Class.CPU
			reserved += n.CPUReserved()
		case cluster.Booting:
			c.On++
			smp.On++
		case cluster.Off:
			c.Off++
			smp.Off++
		}
	}
	if capOnline > 0 {
		smp.Utilization = 100 * reserved / capOnline
	}
	smp.Classes = classes

	// Running VMs come from the transition-maintained counter rather
	// than a sweep of the per-node VM maps: it counts each guest once
	// (a migrating VM holds reservations on both endpoints, but has
	// exactly one Running->Migrating transition) and costs nothing at
	// 10k-node chaos scale.
	smp.Running = s.active
	return smp
}
