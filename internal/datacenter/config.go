// Package datacenter is the simulation harness: it binds the
// discrete-event engine, the cluster model, a scheduling policy, the
// λ power manager and the metric collectors, and executes a workload
// trace through the full VM lifecycle (queue → create → run →
// migrate/checkpoint/fail → complete) with power accounting.
//
// It corresponds to the simulator of §IV in the paper: the Workload
// Generator feeds arrivals, the Scheduler is "real" (the actual
// policy code runs), and the VHost part simulates execution, CPU
// sharing and power consumption.
package datacenter

import (
	"fmt"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

// Config assembles one simulation run.
type Config struct {
	// Classes describes the physical fleet (default: PaperClasses).
	Classes []cluster.Class
	// Trace is the workload to execute. Required for Run; an online
	// harness may leave it nil and admit jobs with Simulation.Inject.
	Trace *workload.Trace
	// Policy decides placements. Required.
	Policy policy.Policy
	// LambdaMin, LambdaMax are the power-manager thresholds in
	// percent (e.g. 30, 90).
	LambdaMin, LambdaMax float64
	// MinExec is the minimum number of operative machines.
	MinExec int
	// Seed drives the stochastic parts (creation jitter, failures).
	Seed int64

	// CreationSigma is the stddev of VM creation time around the
	// class mean (the paper observed N(40, 2.5) on its testbed).
	CreationSigma float64
	// MigrationSigma is the stddev of migration time.
	MigrationSigma float64
	// OpOverheadCPU is the CPU percent an in-flight create/migrate
	// operation consumes on each involved node (default 200: pre-copy
	// migration saturates the NIC and memory bus, and dom0 burns real
	// cycles tracking dirty pages — co-located VMs feel it).
	OpOverheadCPU float64
	// OpWeight is the Xen weight of the operation's service domain
	// (dom0 work is prioritized over guest domains).
	OpWeight float64

	// TickInterval is the period of housekeeping rounds (power
	// manager evaluation, migration re-planning). Seconds.
	TickInterval float64

	// ThrashFactor models the efficiency collapse of an overcommitted
	// node (hypervisor context switching, cache and TLB thrash): when
	// the VMs' aggregate CPU demand exceeds the node's capacity, the
	// useful fraction of each granted CPU cycle is
	//
	//	eff = 1 / (1 + ThrashFactor · (demand/capacity − 1))
	//
	// so a node overcommitted 2× at factor 1 wastes half of every
	// cycle. Policies that respect the 100 % occupation limit never
	// trigger it; the random baseline drowns in it, as the paper's
	// does. 0 selects the default of 1; a negative value disables
	// the effect.
	ThrashFactor float64

	// FailuresEnabled turns on reliability-driven node failures.
	FailuresEnabled bool
	// MTTR is the mean repair time after a failure, seconds.
	MTTR float64
	// CheckpointInterval, when positive, checkpoints running VMs
	// periodically so recovery resumes instead of restarting.
	CheckpointInterval float64

	// MaxTime hard-stops the simulation (0 = run until all jobs
	// complete).
	MaxTime float64

	// StartOnline boots every node before the first event (used by
	// the validation experiment and tests that want a warm fleet).
	StartOnline bool

	// AdaptiveTarget, when positive, enables the dynamic-threshold
	// controller (§V-A future work): λmin is adjusted at runtime to
	// hold mean client satisfaction at this percentage.
	AdaptiveTarget float64

	// EventLog, when non-nil, receives every simulation event
	// (arrivals, placements, migrations, boots, failures, ...) as it
	// happens — the observability hook for timeline tooling.
	EventLog func(Event)

	// RoundTimer, when non-nil, receives the wall-clock duration (in
	// seconds) of every policy scheduling round — the latency-histogram
	// hook. It observes wall time only, never virtual time, so it
	// cannot perturb the deterministic simulation.
	RoundTimer func(seconds float64)
}

// Defaults fills unset fields with the paper's evaluation setup.
func (c Config) Defaults() Config {
	if c.Classes == nil {
		c.Classes = cluster.PaperClasses()
	}
	if c.LambdaMin == 0 && c.LambdaMax == 0 {
		c.LambdaMin, c.LambdaMax = 30, 90
	}
	if c.MinExec == 0 {
		c.MinExec = 1
	}
	if c.CreationSigma == 0 {
		c.CreationSigma = 2.5
	}
	if c.MigrationSigma == 0 {
		c.MigrationSigma = 2.5
	}
	if c.OpOverheadCPU == 0 {
		c.OpOverheadCPU = 200
	}
	if c.OpWeight == 0 {
		c.OpWeight = 512
	}
	if c.TickInterval == 0 {
		c.TickInterval = 60
	}
	if c.ThrashFactor == 0 {
		c.ThrashFactor = 0.2
	} else if c.ThrashFactor < 0 {
		c.ThrashFactor = 0
	}
	if c.MTTR == 0 {
		c.MTTR = 1800
	}
	return c
}

// Validate reports configuration errors after Defaults. A Trace is
// not required here: an online harness injects jobs one at a time
// (see Simulation.Inject); Run still demands a non-empty trace.
func (c Config) Validate() error {
	if c.Policy == nil {
		return fmt.Errorf("datacenter: config needs a policy")
	}
	if c.TickInterval <= 0 {
		return fmt.Errorf("datacenter: tick interval must be positive")
	}
	if _, err := core.NewPowerManager(c.LambdaMin, c.LambdaMax, c.MinExec); err != nil {
		return err
	}
	return nil
}
