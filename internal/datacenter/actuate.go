package datacenter

import (
	"energysched/internal/cluster"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// actuators: the operations the scheduler performs on the (simulated)
// infrastructure, with their virtualization overheads (§III-C and
// §IV). Creation and migration take class-dependent time with the
// N(mean, sigma) jitter observed on the paper's testbed, and inject
// dom0 CPU overhead on the involved nodes for their duration.

// applyPlace starts creating a queued VM on a node. Invalid requests
// (offline node, hardware mismatch) are ignored and the VM stays
// queued — the same contract a real cloud middleware offers a buggy
// scheduler. Overcommit is allowed and simply stretches execution via
// the CPU allocator; consolidation policies self-restrict through
// their occupation checks, the random baseline deliberately does not.
func (s *Simulation) applyPlace(a policy.Place) {
	v := a.VM
	n := s.cluster.Node(a.Node)
	if v.State != vm.Queued || n == nil || n.State != cluster.On {
		return
	}
	if !n.Satisfies(v.Req) {
		return
	}
	s.removeFromQueue(v)
	v.State = vm.Creating
	v.Host = n.ID
	v.Touch()
	n.AddVM(v)
	n.BeginCreate()
	s.emit(EvPlace, v.ID, n.ID, -1)
	s.recomputeNode(s.rt[n.ID])

	dur := s.creation.NormalPositive(n.Class.CreateCost, s.cfg.CreationSigma)
	vv := v
	s.eng.After(dur, func() { s.onCreated(vv) })
}

func (s *Simulation) onCreated(v *vm.VM) {
	if v.State != vm.Creating {
		return // the hosting node failed mid-creation
	}
	n := s.cluster.Node(v.Host)
	n.EndCreate()
	v.State = vm.Running
	s.active++
	v.Touch()
	if v.Start < 0 {
		v.Start = s.eng.Now()
	}
	s.emit(EvCreated, v.ID, n.ID, -1)
	s.recomputeNode(s.rt[n.ID])
	s.round()
}

// applyMigrate starts a live migration. The VM keeps running on the
// source for the duration; the destination holds a full reservation
// (memory is copied there) and both endpoints pay dom0 overhead.
func (s *Simulation) applyMigrate(a policy.Migrate) {
	v := a.VM
	if v.State != vm.Running || v.Host < 0 || v.Host == a.To {
		return
	}
	src := s.cluster.Node(v.Host)
	dst := s.cluster.Node(a.To)
	if dst == nil || dst.State != cluster.On || !dst.Satisfies(v.Req) {
		return
	}
	v.State = vm.Migrating
	v.MigrateTo = dst.ID
	v.Touch()
	dst.AddVM(v) // reservation on the destination
	src.BeginMigrate()
	dst.BeginMigrate()
	s.emit(EvMigrateStart, v.ID, src.ID, dst.ID)
	s.recomputeNode(s.rt[src.ID])
	s.recomputeNode(s.rt[dst.ID])

	dur := s.migration.NormalPositive(dst.Class.MigrateCost, s.cfg.MigrationSigma)
	vv := v
	s.eng.After(dur, func() { s.onMigrated(vv) })
}

func (s *Simulation) onMigrated(v *vm.VM) {
	if v.State != vm.Migrating {
		return // source or destination failed mid-flight
	}
	src := s.cluster.Node(v.Host)
	dst := s.cluster.Node(v.MigrateTo)
	src.RemoveVM(v)
	src.EndMigrate()
	dst.EndMigrate()
	v.Host = dst.ID
	v.MigrateTo = -1
	v.State = vm.Running
	v.Migrations++
	v.LastMigrate = s.eng.Now()
	v.Touch()
	s.migrations++
	s.emit(EvMigrated, v.ID, src.ID, dst.ID)
	s.recomputeNode(s.rt[src.ID])
	s.recomputeNode(s.rt[dst.ID])
	s.round()
}

// turnOn boots a powered-off node.
func (s *Simulation) turnOn(n *cluster.Node) {
	if n.State != cluster.Off {
		return
	}
	rt := s.rt[n.ID]
	s.advanceNode(rt, s.eng.Now())
	n.SetState(cluster.Booting)
	rt.meter.Observe(s.eng.Now(), n.Watts(0))
	s.emit(EvBoot, -1, n.ID, -1)
	nn := n
	s.eng.After(n.Class.BootTime, func() { s.onBooted(nn) })
}

func (s *Simulation) onBooted(n *cluster.Node) {
	if n.State != cluster.Booting {
		return
	}
	n.SetState(cluster.On)
	s.emit(EvBooted, -1, n.ID, -1)
	s.recomputeNode(s.rt[n.ID])
	s.armFailure(n)
	s.round()
}

// turnOff powers down an idle node.
func (s *Simulation) turnOff(n *cluster.Node) {
	if !n.Idle() {
		return
	}
	rt := s.rt[n.ID]
	s.advanceNode(rt, s.eng.Now())
	n.SetState(cluster.Off)
	if rt.failTimer != nil {
		rt.failTimer.Cancel()
		rt.failTimer = nil
	}
	rt.meter.Observe(s.eng.Now(), n.Watts(0))
	s.emit(EvOff, -1, n.ID, -1)
}

// --- failure injection (reliability model, §III-A6) ---

// armFailure schedules the next failure of an operational node. The
// node's reliability factor Frel is its steady-state availability:
// with mean repair time MTTR, the mean time between failures is
// MTTR · Frel / (1 − Frel).
func (s *Simulation) armFailure(n *cluster.Node) {
	if !s.cfg.FailuresEnabled || n.Reliability >= 1 {
		return
	}
	rt := s.rt[n.ID]
	if rt.failTimer != nil {
		rt.failTimer.Cancel()
	}
	mtbf := s.cfg.MTTR * n.Reliability / (1 - n.Reliability)
	delay := s.failures.Exp(1 / mtbf)
	nn := n
	rt.failTimer = s.eng.ScheduleAfter(delay, func() { s.onFailure(nn) })
}

// onFailure crashes a node: every VM it hosts is lost and re-queued,
// recovering from its last checkpoint if one exists (§III-C: "if
// there is not available checkpoint, it recreates the VM").
func (s *Simulation) onFailure(n *cluster.Node) {
	rt := s.rt[n.ID]
	rt.failTimer = nil
	if n.State != cluster.On {
		return
	}
	s.advanceNode(rt, s.eng.Now())
	s.failCount++
	s.emit(EvFailed, -1, n.ID, -1)

	for _, v := range sortedByID(n.VMs) {
		n.RemoveVM(v)
		if t := s.completionTimer[v.ID]; t != nil {
			t.Cancel()
			delete(s.completionTimer, v.ID)
		}
		switch {
		case v.State == vm.Migrating && v.Host == n.ID:
			// Source died mid-migration: release the destination.
			if dst := s.cluster.Node(v.MigrateTo); dst != nil {
				dst.RemoveVM(v)
				dst.EndMigrate()
				s.recomputeNode(s.rt[dst.ID])
			}
			s.requeueFailed(v)
		case v.State == vm.Migrating:
			// Destination died: the VM keeps running on the source.
			src := s.cluster.Node(v.Host)
			src.EndMigrate()
			v.MigrateTo = -1
			v.State = vm.Running
			v.Touch()
			s.recomputeNode(s.rt[src.ID])
		case v.State == vm.Creating:
			n.EndCreate()
			s.requeueFailed(v)
		default:
			s.requeueFailed(v)
		}
	}
	n.ResetOps()
	n.SetState(cluster.Down)
	rt.meter.Observe(s.eng.Now(), n.Watts(0))

	nn := n
	s.eng.After(s.cfg.MTTR, func() { s.onRepaired(nn) })
	s.round()
}

// CrashNode fails a node immediately, independent of the stochastic
// reliability model — the chaos harness's injection point. It must be
// called from inside the engine (an At/After callback), never from a
// foreign goroutine. The node recovers after MTTR like any organic
// failure, so repeated crashes on one node spaced further apart than
// MTTR model flapping. Returns false if the node does not exist or is
// not currently On (crashing a node that is Off, Down or booting is a
// no-op, exactly like the organic path).
func (s *Simulation) CrashNode(id int) bool {
	n := s.cluster.Node(id)
	if n == nil || n.State != cluster.On {
		return false
	}
	rt := s.rt[n.ID]
	if rt.failTimer != nil {
		// Supersede the organic failure draw; onFailure re-arms nothing
		// until the node is next powered on.
		rt.failTimer.Cancel()
		rt.failTimer = nil
	}
	s.onFailure(n)
	return true
}

func (s *Simulation) onRepaired(n *cluster.Node) {
	if n.State != cluster.Down {
		return
	}
	n.SetState(cluster.Off)
	s.rt[n.ID].meter.Observe(s.eng.Now(), n.Watts(0))
	s.emit(EvRepaired, -1, n.ID, -1)
	s.round()
}

// requeueFailed sends a lost VM back to the virtual host, resuming
// from its checkpoint if it has one.
func (s *Simulation) requeueFailed(v *vm.VM) {
	// Callers hand us the VM with its pre-failure state intact, so this
	// is the one place that catches every active->queued transition.
	if v.State == vm.Running || v.State == vm.Migrating {
		s.active--
	}
	v.State = vm.Queued
	v.Host = -1
	v.MigrateTo = -1
	v.Alloc = 0
	v.Progress = v.Checkpoint
	v.Restarts++
	v.Touch()
	s.queue = append(s.queue, v)
	s.emit(EvRequeued, v.ID, -1, -1)
}

func (s *Simulation) removeFromQueue(v *vm.VM) {
	for i, q := range s.queue {
		if q.ID == v.ID {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}
