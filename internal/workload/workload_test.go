package workload

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Horizon = 24 * 3600
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	cfg.Seed = 99
	c := MustGenerate(cfg)
	if c.Len() == a.Len() && len(a.Jobs) > 0 && c.Jobs[0] == a.Jobs[0] {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateCalibration(t *testing.T) {
	// The default week must land near the paper's aggregate: ≈6000
	// CPU-hours, a couple thousand jobs.
	tr := MustGenerate(DefaultGeneratorConfig())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cpuh := tr.TotalCPUHours()
	if cpuh < 4500 || cpuh > 7500 {
		t.Errorf("weekly CPU-hours = %.0f, want ≈6000", cpuh)
	}
	if tr.Len() < 1500 || tr.Len() > 4500 {
		t.Errorf("weekly jobs = %d, want a couple thousand", tr.Len())
	}
	s := tr.Summarize()
	if s.MeanCPU < 100 || s.MeanCPU > 250 {
		t.Errorf("mean CPU = %.0f%%, want 1–2.5 cores", s.MeanCPU)
	}
}

func TestGenerateJobInvariants(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Horizon = 2 * 24 * 3600
	tr := MustGenerate(cfg)
	for _, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= cfg.Horizon {
			t.Fatalf("job %d submit %.1f outside horizon", j.ID, j.Submit)
		}
		if j.Duration < cfg.MinRuntime || j.Duration > cfg.MaxRuntime {
			t.Fatalf("job %d duration %.1f outside bounds", j.ID, j.Duration)
		}
		if j.CPU != 100 && j.CPU != 200 && j.CPU != 300 && j.CPU != 400 {
			t.Fatalf("job %d CPU %.0f not 1–4 VCPUs", j.ID, j.CPU)
		}
		if j.DeadlineFactor < cfg.DeadlineMin || j.DeadlineFactor >= cfg.DeadlineMax {
			t.Fatalf("job %d deadline factor %.2f outside [%.1f, %.1f)",
				j.ID, j.DeadlineFactor, cfg.DeadlineMin, cfg.DeadlineMax)
		}
		if j.Mem < 1 {
			t.Fatalf("job %d mem %.1f below floor", j.ID, j.Mem)
		}
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.BurstProb = 0 // isolate the diurnal process
	tr := MustGenerate(cfg)
	day, night := 0, 0
	for _, j := range tr.Jobs {
		h := math.Mod(j.Submit, 86400) / 3600
		switch {
		case h >= 12 && h < 18:
			day++
		case h >= 0 && h < 6:
			night++
		}
	}
	if day <= night {
		t.Errorf("afternoon arrivals (%d) should exceed night arrivals (%d)", day, night)
	}
}

func TestGenerateWeekendDip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.BurstProb = 0
	tr := MustGenerate(cfg)
	weekday, weekend := 0, 0
	for _, j := range tr.Jobs {
		if int(j.Submit/86400)%7 >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	// 5 weekdays vs 2 weekend days at 0.55 rate: per-day comparison.
	if float64(weekend)/2 >= float64(weekday)/5 {
		t.Errorf("weekend rate (%d/2d) should be below weekday rate (%d/5d)", weekend, weekday)
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := DefaultGeneratorConfig()
	bad.Horizon = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero horizon accepted")
	}
	bad = DefaultGeneratorConfig()
	bad.JobsPerDay = -1
	if _, err := Generate(bad); err == nil {
		t.Error("negative rate accepted")
	}
	bad = DefaultGeneratorConfig()
	bad.DeadlineMin = 0.5
	if _, err := Generate(bad); err == nil {
		t.Error("deadline factor < 1 accepted")
	}
	bad = DefaultGeneratorConfig()
	bad.CPUWeights = [4]float64{0, 0, 0, 0}
	if _, err := Generate(bad); err == nil {
		t.Error("zero CPU weights accepted")
	}
	bad = DefaultGeneratorConfig()
	bad.MinRuntime = 100
	bad.MaxRuntime = 50
	if _, err := Generate(bad); err == nil {
		t.Error("inverted runtime bounds accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Horizon = 6 * 3600
	orig := MustGenerate(cfg)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost jobs: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Jobs {
		a, b := orig.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Name != b.Name {
			t.Fatalf("job %d identity mismatch", i)
		}
		if math.Abs(a.Submit-b.Submit) > 1e-3 || math.Abs(a.Duration-b.Duration) > 1e-3 ||
			math.Abs(a.CPU-b.CPU) > 0.1 || math.Abs(a.Mem-b.Mem) > 0.01 ||
			math.Abs(a.DeadlineFactor-b.DeadlineFactor) > 1e-4 {
			t.Fatalf("job %d fields drifted: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("not,a,header\n")); err == nil {
		t.Error("missing header accepted")
	}
	hdr := "id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n"
	if _, err := ReadCSV(strings.NewReader(hdr + "x,j,0,10,100,5,1.5,0,,\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadCSV(strings.NewReader(hdr + "1,j,0,abc,100,5,1.5,0,,\n")); err == nil {
		t.Error("bad float accepted")
	}
	// Semantically invalid job (duration 0).
	if _, err := ReadCSV(strings.NewReader(hdr + "1,j,0,0,100,5,1.5,0,,\n")); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestReadGWF(t *testing.T) {
	input := `# GWF comment
; alt comment
1 100 5 3600 2 0 0 2 3600 0 1
2 200 0 0 1 0 0 1 100 0 0
3 250 0 1800 8 0 0 8 1800 0 1
`
	tr, err := ReadGWF(strings.NewReader(input), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 has run time 0 (cancelled) → skipped.
	if tr.Len() != 2 {
		t.Fatalf("jobs = %d, want 2", tr.Len())
	}
	j := tr.Jobs[0]
	if j.Submit != 0 { // times rebased to the first job
		t.Errorf("submit = %v, want 0", j.Submit)
	}
	if j.CPU != 200 || j.Duration != 3600 {
		t.Errorf("job 1 = %+v", j)
	}
	// Job 3: 8 procs folded into 4 VCPUs with duration stretched 2×.
	k := tr.Jobs[1]
	if k.CPU != 400 {
		t.Errorf("folded CPU = %v, want 400", k.CPU)
	}
	if k.Duration != 3600 {
		t.Errorf("folded duration = %v, want 3600 (work conserved)", k.Duration)
	}
	if k.Submit != 150 {
		t.Errorf("rebased submit = %v, want 150", k.Submit)
	}
}

func TestReadGWFDeadlineFactorsInBand(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 200; i++ {
		sb.WriteString(strings.ReplaceAll("ID 10 0 100 1 0 0 1 100 0 1\n", "ID", strconv.Itoa(i)))
	}
	tr, err := ReadGWF(strings.NewReader(sb.String()), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.DeadlineFactor < 1.2 || j.DeadlineFactor > 2.0 {
			t.Fatalf("deadline factor %v outside [1.2, 2.0]", j.DeadlineFactor)
		}
	}
}

func TestReadGWFErrors(t *testing.T) {
	if _, err := ReadGWF(strings.NewReader("1 2 3\n"), ConvertOptions{}); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadGWF(strings.NewReader("x 100 0 100 1\n"), ConvertOptions{}); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadGWF(strings.NewReader("1 x 0 100 1\n"), ConvertOptions{}); err == nil {
		t.Error("bad numeric accepted")
	}
}

func TestTraceSortAndValidate(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 2, Submit: 50, Duration: 10, CPU: 100, DeadlineFactor: 1.5},
		{ID: 1, Submit: 10, Duration: 10, CPU: 100, DeadlineFactor: 1.5},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trace rejected: %v", err)
	}
	if tr.Jobs[0].ID != 1 {
		t.Error("sort did not order by submit")
	}
}

func TestJobDeadline(t *testing.T) {
	j := Job{Submit: 100, Duration: 60, DeadlineFactor: 1.5}
	if got := j.Deadline(); got != 190 {
		t.Errorf("deadline = %v, want 190", got)
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 0, Submit: 0, Duration: 3600, CPU: 200, Mem: 10, DeadlineFactor: 1.5},
		{ID: 1, Submit: 100, Duration: 7200, CPU: 100, Mem: 6, DeadlineFactor: 1.2},
	}}
	if got := tr.TotalCPUHours(); got != 2+2 {
		t.Errorf("CPU hours = %v, want 4", got)
	}
	if got := tr.Makespan(); got != 7300 {
		t.Errorf("makespan = %v", got)
	}
	s := tr.Summarize()
	if s.Jobs != 2 || s.MeanCPU != 150 || s.MeanMem != 8 || s.MaxRuntime != 7200 || s.Span != 100 {
		t.Errorf("stats = %+v", s)
	}
	empty := (&Trace{}).Summarize()
	if empty.Jobs != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

// Property: CSV round-trip preserves every generated trace.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64, hours uint8) bool {
		cfg := DefaultGeneratorConfig()
		cfg.Seed = seed
		cfg.Horizon = (float64(hours%12) + 1) * 3600
		orig, err := Generate(cfg)
		if err != nil {
			return false
		}
		if orig.Len() == 0 {
			return true
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, orig); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return back.Len() == orig.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Reader hardening: empty traces and out-of-order submission times
// must error instead of silently producing bad traces.
func TestReadGWFRejectsEmptyAndDisorder(t *testing.T) {
	// Comment-only file: no usable jobs.
	if _, err := ReadGWF(strings.NewReader("# just a header\n; nothing\n"), ConvertOptions{}); err == nil {
		t.Error("empty gwf trace accepted")
	}
	// All jobs cancelled (run == 0): still no usable jobs.
	if _, err := ReadGWF(strings.NewReader("1 100 0 0 2 0 0 2 0 0 0\n"), ConvertOptions{}); err == nil {
		t.Error("all-cancelled gwf trace accepted")
	}
	// Submission times regress between accepted lines.
	disorder := "1 200 0 100 1 0 0 1 100 0 1\n2 100 0 100 1 0 0 1 100 0 1\n"
	if _, err := ReadGWF(strings.NewReader(disorder), ConvertOptions{}); err == nil {
		t.Error("out-of-order gwf trace accepted")
	}
	// A cancelled job between ordered lines does not break the check.
	ok := "1 100 0 100 1 0 0 1 100 0 1\n2 150 0 0 1 0 0 1 0 0 0\n3 200 0 100 1 0 0 1 100 0 1\n"
	if _, err := ReadGWF(strings.NewReader(ok), ConvertOptions{}); err != nil {
		t.Errorf("ordered gwf trace rejected: %v", err)
	}
	// SWF shares the reader, and therefore the guards.
	if _, err := ReadSWF(strings.NewReader(disorder), ConvertOptions{}); err == nil {
		t.Error("out-of-order swf trace accepted")
	}
}

func TestReadCSVRejectsEmptyAndDisorder(t *testing.T) {
	hdr := "id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n"
	// Header-only file: no jobs.
	if _, err := ReadCSV(strings.NewReader(hdr)); err == nil {
		t.Error("header-only csv trace accepted")
	}
	// Wrong column count.
	if _, err := ReadCSV(strings.NewReader(hdr + "1,j,0,10\n")); err == nil {
		t.Error("short csv row accepted")
	}
	// Out-of-order submits.
	disorder := hdr +
		"1,a,500.000,10.000,100.0,5.00,1.5000,0.0000,,\n" +
		"2,b,100.000,10.000,100.0,5.00,1.5000,0.0000,,\n"
	if _, err := ReadCSV(strings.NewReader(disorder)); err == nil {
		t.Error("out-of-order csv trace accepted")
	}
	// Ordered trace still round-trips.
	ordered := hdr +
		"1,a,100.000,10.000,100.0,5.00,1.5000,0.0000,,\n" +
		"2,b,500.000,10.000,100.0,5.00,1.5000,0.0000,,\n"
	tr, err := ReadCSV(strings.NewReader(ordered))
	if err != nil {
		t.Fatalf("ordered csv trace rejected: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("jobs = %d, want 2", tr.Len())
	}
}

// AllowUnsorted restores the tolerant behavior for genuinely
// interleaved (multi-cluster) archive traces: disorder is sorted and
// rebased to the earliest submission instead of rejected.
func TestReadGWFAllowUnsorted(t *testing.T) {
	disorder := "1 200 0 100 1 0 0 1 100 0 1\n2 100 0 100 1 0 0 1 100 0 1\n"
	tr, err := ReadGWF(strings.NewReader(disorder), ConvertOptions{AllowUnsorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("jobs = %d, want 2", tr.Len())
	}
	if tr.Jobs[0].Submit != 0 || tr.Jobs[1].Submit != 100 {
		t.Fatalf("rebased submits = %v, %v; want 0, 100", tr.Jobs[0].Submit, tr.Jobs[1].Submit)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
