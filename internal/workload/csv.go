package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the native trace column set.
var csvHeader = []string{"id", "name", "submit_s", "duration_s", "cpu_pct", "mem_units", "deadline_factor", "fault_tolerance", "arch", "hypervisor"}

// WriteCSV serializes a trace in the native CSV format (header +
// one row per job).
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			j.Name,
			strconv.FormatFloat(j.Submit, 'f', 3, 64),
			strconv.FormatFloat(j.Duration, 'f', 3, 64),
			strconv.FormatFloat(j.CPU, 'f', 1, 64),
			strconv.FormatFloat(j.Mem, 'f', 2, 64),
			strconv.FormatFloat(j.DeadlineFactor, 'f', 4, 64),
			strconv.FormatFloat(j.FaultTolerance, 'f', 4, 64),
			j.Arch,
			j.Hypervisor,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVSource streams the native CSV trace format row by row. The
// header is consumed and checked at construction; Next parses,
// validates and order-checks one row at a time, so arbitrarily long
// trace files feed a simulation with O(1) ingestion memory. The
// native format is written submit-ordered (WriteCSV); disorder means
// a hand-edited or corrupted trace and is an error.
type CSVSource struct {
	cr    *csv.Reader
	row   int // 1-based file row of the last record read
	count int
	prev  float64
	err   error // sticky
}

// NewCSVSource reads and verifies the header, returning a source for
// the remaining rows.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("workload: empty csv trace")
	}
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	if hdr[0] != csvHeader[0] {
		return nil, fmt.Errorf("workload: missing csv header (first cell %q)", hdr[0])
	}
	return &CSVSource{cr: cr, row: 1}, nil
}

// Next implements JobSource.
func (s *CSVSource) Next() (Job, error) {
	if s.err != nil {
		return Job{}, s.err
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		if s.count == 0 {
			s.err = fmt.Errorf("workload: csv trace has no jobs")
			return Job{}, s.err
		}
		s.err = io.EOF
		return Job{}, io.EOF
	}
	if err != nil {
		s.err = fmt.Errorf("workload: reading csv: %w", err)
		return Job{}, s.err
	}
	s.row++
	j, err := parseCSVRow(rec)
	if err != nil {
		s.err = fmt.Errorf("workload: row %d: %w", s.row, err)
		return Job{}, s.err
	}
	if s.count > 0 && j.Submit < s.prev {
		s.err = fmt.Errorf("workload: row %d: submit %.3f before predecessor %.3f (trace out of order)",
			s.row, j.Submit, s.prev)
		return Job{}, s.err
	}
	if err := j.Validate(); err != nil {
		s.err = err
		return Job{}, s.err
	}
	s.prev = j.Submit
	s.count++
	return j, nil
}

// ReadCSV parses the native CSV trace format. It is a materialization
// of CSVSource, so streaming and whole-trace ingestion accept exactly
// the same files.
func ReadCSV(r io.Reader) (*Trace, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

func parseCSVRow(rec []string) (Job, error) {
	var j Job
	var err error
	if j.ID, err = strconv.Atoi(rec[0]); err != nil {
		return j, fmt.Errorf("bad id %q: %w", rec[0], err)
	}
	j.Name = rec[1]
	fields := []struct {
		dst *float64
		col int
	}{
		{&j.Submit, 2}, {&j.Duration, 3}, {&j.CPU, 4},
		{&j.Mem, 5}, {&j.DeadlineFactor, 6}, {&j.FaultTolerance, 7},
	}
	for _, f := range fields {
		if *f.dst, err = strconv.ParseFloat(rec[f.col], 64); err != nil {
			return j, fmt.Errorf("bad %s %q: %w", csvHeader[f.col], rec[f.col], err)
		}
	}
	j.Arch = rec[8]
	j.Hypervisor = rec[9]
	return j, nil
}
