package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the native trace column set.
var csvHeader = []string{"id", "name", "submit_s", "duration_s", "cpu_pct", "mem_units", "deadline_factor", "fault_tolerance", "arch", "hypervisor"}

// WriteCSV serializes a trace in the native CSV format (header +
// one row per job).
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			j.Name,
			strconv.FormatFloat(j.Submit, 'f', 3, 64),
			strconv.FormatFloat(j.Duration, 'f', 3, 64),
			strconv.FormatFloat(j.CPU, 'f', 1, 64),
			strconv.FormatFloat(j.Mem, 'f', 2, 64),
			strconv.FormatFloat(j.DeadlineFactor, 'f', 4, 64),
			strconv.FormatFloat(j.FaultTolerance, 'f', 4, 64),
			j.Arch,
			j.Hypervisor,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the native CSV trace format.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty csv trace")
	}
	if rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("workload: missing csv header (first cell %q)", rows[0][0])
	}
	tr := &Trace{}
	for i, rec := range rows[1:] {
		j, err := parseCSVRow(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+2, err)
		}
		if n := len(tr.Jobs); n > 0 && j.Submit < tr.Jobs[n-1].Submit {
			// The native format is written submit-ordered (WriteCSV);
			// disorder means a hand-edited or corrupted trace, and
			// silently sorting would mask the damage.
			return nil, fmt.Errorf("workload: row %d: submit %.3f before predecessor %.3f (trace out of order)",
				i+2, j.Submit, tr.Jobs[n-1].Submit)
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	if len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("workload: csv trace has no jobs")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseCSVRow(rec []string) (Job, error) {
	var j Job
	var err error
	if j.ID, err = strconv.Atoi(rec[0]); err != nil {
		return j, fmt.Errorf("bad id %q: %w", rec[0], err)
	}
	j.Name = rec[1]
	fields := []struct {
		dst *float64
		col int
	}{
		{&j.Submit, 2}, {&j.Duration, 3}, {&j.CPU, 4},
		{&j.Mem, 5}, {&j.DeadlineFactor, 6}, {&j.FaultTolerance, 7},
	}
	for _, f := range fields {
		if *f.dst, err = strconv.ParseFloat(rec[f.col], 64); err != nil {
			return j, fmt.Errorf("bad %s %q: %w", csvHeader[f.col], rec[f.col], err)
		}
	}
	j.Arch = rec[8]
	j.Hypervisor = rec[9]
	return j, nil
}
