package workload

import (
	"bytes"
	"testing"
)

// The trace readers are the daemon's untrusted-input surface (operator
// files, but also anything piped into the CLIs), so each parser gets a
// fuzz target with the same contract: never panic, and any trace the
// parser accepts must be non-empty, pass Validate, and survive a
// serialize→reparse round trip. Seed corpora live in testdata/fuzz.

// checkAcceptedTrace enforces the parser output contract.
func checkAcceptedTrace(t *testing.T, tr *Trace) {
	t.Helper()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("parser accepted an empty trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("parser accepted an invalid trace: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("accepted trace does not serialize: %v", err)
	}
	tr2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("serialized trace does not reparse: %v", err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("round trip changed job count: %d -> %d", tr.Len(), tr2.Len())
	}
}

func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n" +
		"0,job-a,0.000,600.000,100.0,5.00,1.5000,0.0000,,\n" +
		"1,job-b,60.000,1200.000,200.0,10.00,2.0000,0.0500,x86_64,xen\n"))
	f.Add([]byte("id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n")) // header only
	f.Add([]byte("id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n" +
		"0,a,100.000,600.000,100.0,5.00,1.5000,0.0000,,\n" +
		"1,b,50.000,600.000,100.0,5.00,1.5000,0.0000,,\n")) // out of order
	f.Add([]byte("id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n" +
		"0,a,NaN,600.000,1e309,5.00,1.5000,0.0000,,\n")) // numeric edge cases
	f.Add([]byte(`not,a,trace`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkAcceptedTrace(t, tr)
	})
}

func FuzzReadGWF(f *testing.F) {
	f.Add([]byte("# gwf comment\n0 0 0 600 2 0 0 2 600 0 1\n1 60 0 1200 4 0 0 4 1200 0 1\n"))
	f.Add([]byte("0 100 0 600 2\n1 50 0 600 2\n"))  // out of order
	f.Add([]byte("0 0 0 -600 2\n"))                 // cancelled job only
	f.Add([]byte("0 Inf 0 600 2\n1 NaN 0 600 2\n")) // numeric edge cases
	f.Add([]byte("; swf-style comment\nx 0 0 600 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadGWF(bytes.NewReader(data), ConvertOptions{})
		if err != nil {
			return
		}
		checkAcceptedTrace(t, tr)
	})
}

func FuzzReadSWF(f *testing.F) {
	f.Add([]byte("; SWF header\n0 0 0 600 2 0 0 2 600 0 1\n1 60 0 1200 4 0 0 4 1200 0 1\n"))
	f.Add([]byte("1 90 0 600 2\n0 10 0 600 2\n")) // unsorted: exercised via AllowUnsorted
	f.Fuzz(func(t *testing.T, data []byte) {
		// SWF shares the GWF reader; fuzz it through the sorting path
		// (AllowUnsorted) so both orderings of the guard are covered.
		tr, err := ReadSWF(bytes.NewReader(data), ConvertOptions{AllowUnsorted: true})
		if err != nil {
			return
		}
		checkAcceptedTrace(t, tr)
	})
}
