package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// gwfRow is one parsed and validated GWF/SWF data line.
type gwfRow struct {
	id                 int
	submit, run, procs float64
}

// parseGWFLine decodes one non-comment line. cancelled reports a
// zero-runtime or zero-width submission — the archives' convention for
// cancelled jobs, which replay skips. Anything else malformed is an
// error: negative or non-finite runtimes, processor counts and submit
// times mean a corrupted file, and silently skipping them (as earlier
// revisions did for negative runtimes) fabricates a workload the
// archive never recorded.
func parseGWFLine(line int, text string) (row gwfRow, cancelled bool, err error) {
	f := strings.Fields(text)
	if len(f) < 5 {
		return row, false, fmt.Errorf("workload: gwf line %d: %d fields, need >= 5", line, len(f))
	}
	id, err := strconv.Atoi(f[0])
	if err != nil {
		return row, false, fmt.Errorf("workload: gwf line %d: bad job id %q", line, f[0])
	}
	submit, err1 := strconv.ParseFloat(f[1], 64)
	run, err2 := strconv.ParseFloat(f[3], 64)
	procs, err3 := strconv.ParseFloat(f[4], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return row, false, fmt.Errorf("workload: gwf line %d: bad numeric field", line)
	}
	for _, v := range [...]float64{submit, run, procs} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return row, false, fmt.Errorf("workload: gwf line %d: non-finite numeric field", line)
		}
	}
	if submit < 0 {
		return row, false, fmt.Errorf("workload: gwf line %d: negative submit time %.0f", line, submit)
	}
	if run < 0 {
		return row, false, fmt.Errorf("workload: gwf line %d: negative runtime %.0f", line, run)
	}
	if procs < 0 {
		return row, false, fmt.Errorf("workload: gwf line %d: negative processor count %.0f", line, procs)
	}
	if run == 0 || procs == 0 {
		return row, true, nil // cancelled / failed submission
	}
	return gwfRow{id: id, submit: submit, run: run, procs: procs}, false, nil
}

// gwfSkippable reports whether a raw line carries no data (blank, or a
// '#'/';' comment — GWF and SWF headers respectively).
func gwfSkippable(text string) bool {
	return text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, ";")
}

// GWFSource streams a Grid Workloads Format (or SWF — same column
// prefix) trace job by job: each accepted line is converted and
// yielded immediately, so week-long archive files feed a simulation
// with O(1) ingestion memory. The file must be submit-ordered (the
// single-cluster archive convention); a regression is an error, since
// a streaming reader cannot sort. For deliberately interleaved
// multi-cluster files use ReadGWF with ConvertOptions.AllowUnsorted,
// which materializes.
//
// Submit times are rebased to the first accepted job's, which for a
// sorted file equals the whole-trace minimum — so draining a
// GWFSource yields exactly ReadGWF's jobs.
type GWFSource struct {
	sc    *bufio.Scanner
	opts  ConvertOptions
	line  int
	count int
	t0    float64
	prev  float64
	first bool
	err   error // sticky
}

// NewGWFSource builds a streaming GWF/SWF reader. opts.AllowUnsorted
// is rejected: sorting requires materializing the trace.
func NewGWFSource(r io.Reader, opts ConvertOptions) (*GWFSource, error) {
	if opts.AllowUnsorted {
		return nil, fmt.Errorf("workload: streaming gwf source cannot sort; use ReadGWF for AllowUnsorted traces")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return &GWFSource{sc: sc, opts: opts.withDefaults(), first: true}, nil
}

// Next implements JobSource.
func (s *GWFSource) Next() (Job, error) {
	if s.err != nil {
		return Job{}, s.err
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if gwfSkippable(text) {
			continue
		}
		row, cancelled, err := parseGWFLine(s.line, text)
		if err != nil {
			s.err = err
			return Job{}, err
		}
		if cancelled {
			continue
		}
		if s.first {
			s.t0 = row.submit
			s.first = false
		} else if row.submit < s.prev {
			s.err = fmt.Errorf("workload: gwf line %d: submit time %.0f before predecessor %.0f (trace out of order; set ConvertOptions.AllowUnsorted to sort)",
				s.line, row.submit, s.prev)
			return Job{}, s.err
		}
		s.prev = row.submit
		j := s.opts.convert(row.id, row.submit-s.t0, row.run, row.procs)
		if err := j.Validate(); err != nil {
			s.err = fmt.Errorf("workload: gwf line %d: %w", s.line, err)
			return Job{}, s.err
		}
		s.count++
		return j, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("workload: reading gwf: %w", err)
		return Job{}, s.err
	}
	if s.count == 0 {
		s.err = fmt.Errorf("workload: gwf trace has no usable jobs")
		return Job{}, s.err
	}
	s.err = io.EOF
	return Job{}, io.EOF
}

// ReadGWF parses a trace in the Grid Workloads Format used by the
// Grid Workloads Archive (gwa.ewi.tudelft.nl), the source of the
// paper's Grid5000 trace. GWF is whitespace-separated with '#'
// comments; the columns used here are the standard first eleven:
//
//	0 JobID  1 SubmitTime  2 WaitTime  3 RunTime  4 NProcs
//	5 AverageCPUTimeUsed  6 UsedMemory  7 ReqNProcs  8 ReqTime
//	9 ReqMemory  10 Status
//
// Jobs with zero runtime or processor counts are skipped, as is
// conventional when replaying archive traces (cancelled and failed
// submissions); negative or non-finite values in the consumed fields
// are rejected as corruption. opts tunes the conversion into the
// simulator's model.
//
// The sorted path is a materialization of GWFSource, so streaming and
// whole-trace ingestion accept exactly the same files.
func ReadGWF(r io.Reader, opts ConvertOptions) (*Trace, error) {
	opts = opts.withDefaults()
	if opts.AllowUnsorted {
		return readGWFUnsorted(r, opts)
	}
	src, err := NewGWFSource(r, opts)
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

// readGWFUnsorted is the materializing reader for deliberately
// interleaved multi-cluster traces: rows are collected, rebased to the
// earliest submission and sorted.
func readGWFUnsorted(r io.Reader, opts ConvertOptions) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var raw []gwfRow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if gwfSkippable(text) {
			continue
		}
		row, cancelled, err := parseGWFLine(line, text)
		if err != nil {
			return nil, err
		}
		if cancelled {
			continue
		}
		raw = append(raw, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading gwf: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: gwf trace has no usable jobs")
	}
	// Rebase to the earliest submission.
	t0 := raw[0].submit
	for _, r := range raw {
		if r.submit < t0 {
			t0 = r.submit
		}
	}
	tr := &Trace{}
	for _, r := range raw {
		tr.Jobs = append(tr.Jobs, opts.convert(r.id, r.submit-t0, r.run, r.procs))
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadSWF parses the Standard Workload Format (Feitelson's parallel
// workloads archive). SWF columns:
//
//	0 JobID  1 SubmitTime  2 WaitTime  3 RunTime  4 AllocatedProcs ...
//
// The layout coincides with the GWF prefix for the fields we consume,
// so the same conversion applies.
func ReadSWF(r io.Reader, opts ConvertOptions) (*Trace, error) {
	return ReadGWF(r, opts)
}

// NewSWFSource is NewGWFSource for SWF files (shared column prefix).
func NewSWFSource(r io.Reader, opts ConvertOptions) (*GWFSource, error) {
	return NewGWFSource(r, opts)
}

// ConvertOptions controls how archive jobs map into the simulator's
// VM-shaped jobs.
type ConvertOptions struct {
	// CPUPerProc is the CPU percent granted per allocated processor
	// (default 100).
	CPUPerProc float64
	// MaxVCPUs caps the per-job CPU at MaxVCPUs × 100 so archive jobs
	// wider than one node are folded into a node-sized VM, as the
	// paper's single-VM-per-job model requires (default 4).
	MaxVCPUs int
	// MemPerVCPU is memory units per VCPU (default 12).
	MemPerVCPU float64
	// DeadlineMin, DeadlineMax bound the deadline factor assigned
	// deterministically per job (default 1.2–2.0).
	DeadlineMin, DeadlineMax float64
	// AllowUnsorted accepts traces whose submit times regress between
	// lines and sorts them, instead of rejecting the file. Single-
	// cluster archive traces are submit-ordered, but multi-cluster
	// archives (interleaved per-cluster clocks) may not be; set this
	// when replaying such a file deliberately.
	AllowUnsorted bool
}

func (o ConvertOptions) withDefaults() ConvertOptions {
	if o.CPUPerProc <= 0 {
		o.CPUPerProc = 100
	}
	if o.MaxVCPUs <= 0 {
		o.MaxVCPUs = 4
	}
	if o.MemPerVCPU <= 0 {
		o.MemPerVCPU = 12
	}
	if o.DeadlineMin < 1 {
		o.DeadlineMin = 1.2
	}
	if o.DeadlineMax < o.DeadlineMin {
		o.DeadlineMax = 2.0
	}
	return o
}

// convert folds an archive job into the simulator's model. Jobs wider
// than MaxVCPUs are shrunk to MaxVCPUs with the duration stretched to
// conserve total work, the usual folding when replaying cluster
// traces on VM-sized slots.
func (o ConvertOptions) convert(id int, submit, run, procs float64) Job {
	vcpus := procs
	max := float64(o.MaxVCPUs)
	dur := run
	if vcpus > max {
		dur = run * vcpus / max
		vcpus = max
	}
	// Deterministic deadline factor from the job id, spanning the
	// configured band — reproducible without a random stream.
	span := o.DeadlineMax - o.DeadlineMin
	factor := o.DeadlineMin + span*float64(id%97)/96.0
	return Job{
		ID:             id,
		Name:           fmt.Sprintf("gwf-%d", id),
		Submit:         submit,
		Duration:       dur,
		CPU:            vcpus * o.CPUPerProc,
		Mem:            vcpus * o.MemPerVCPU,
		DeadlineFactor: factor,
	}
}
