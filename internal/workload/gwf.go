package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadGWF parses a trace in the Grid Workloads Format used by the
// Grid Workloads Archive (gwa.ewi.tudelft.nl), the source of the
// paper's Grid5000 trace. GWF is whitespace-separated with '#'
// comments; the columns used here are the standard first eleven:
//
//	0 JobID  1 SubmitTime  2 WaitTime  3 RunTime  4 NProcs
//	5 AverageCPUTimeUsed  6 UsedMemory  7 ReqNProcs  8 ReqTime
//	9 ReqMemory  10 Status
//
// Jobs with non-positive runtime or processor counts are skipped, as
// is conventional when replaying archive traces (cancelled and failed
// submissions). opts tunes the conversion into the simulator's model.
func ReadGWF(r io.Reader, opts ConvertOptions) (*Trace, error) {
	opts = opts.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	type rawJob struct {
		id                 int
		submit, run, procs float64
	}
	var raw []rawJob
	line := 0
	var prevSubmit float64
	first := true
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, ";") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 5 {
			return nil, fmt.Errorf("workload: gwf line %d: %d fields, need >= 5", line, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("workload: gwf line %d: bad job id %q", line, f[0])
		}
		submit, err1 := strconv.ParseFloat(f[1], 64)
		run, err2 := strconv.ParseFloat(f[3], 64)
		procs, err3 := strconv.ParseFloat(f[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: gwf line %d: bad numeric field", line)
		}
		if run <= 0 || procs <= 0 {
			continue // cancelled / failed submissions
		}
		if !first && submit < prevSubmit && !opts.AllowUnsorted {
			// Submit-time regressions in a single-cluster archive mean
			// a corrupted or concatenated file; silently reordering
			// would fabricate a workload that never happened. Opt in
			// via AllowUnsorted for genuinely interleaved multi-cluster
			// traces.
			return nil, fmt.Errorf("workload: gwf line %d: submit time %.0f before predecessor %.0f (trace out of order; set ConvertOptions.AllowUnsorted to sort)",
				line, submit, prevSubmit)
		}
		prevSubmit = submit
		first = false
		raw = append(raw, rawJob{id: id, submit: submit, run: run, procs: procs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading gwf: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: gwf trace has no usable jobs")
	}
	// Rebase to the earliest submission (the first line when sorted).
	t0 := raw[0].submit
	for _, r := range raw {
		if r.submit < t0 {
			t0 = r.submit
		}
	}
	tr := &Trace{}
	for _, r := range raw {
		tr.Jobs = append(tr.Jobs, opts.convert(r.id, r.submit-t0, r.run, r.procs))
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadSWF parses the Standard Workload Format (Feitelson's parallel
// workloads archive). SWF columns:
//
//	0 JobID  1 SubmitTime  2 WaitTime  3 RunTime  4 AllocatedProcs ...
//
// The layout coincides with the GWF prefix for the fields we consume,
// so the same conversion applies.
func ReadSWF(r io.Reader, opts ConvertOptions) (*Trace, error) {
	return ReadGWF(r, opts)
}

// ConvertOptions controls how archive jobs map into the simulator's
// VM-shaped jobs.
type ConvertOptions struct {
	// CPUPerProc is the CPU percent granted per allocated processor
	// (default 100).
	CPUPerProc float64
	// MaxVCPUs caps the per-job CPU at MaxVCPUs × 100 so archive jobs
	// wider than one node are folded into a node-sized VM, as the
	// paper's single-VM-per-job model requires (default 4).
	MaxVCPUs int
	// MemPerVCPU is memory units per VCPU (default 12).
	MemPerVCPU float64
	// DeadlineMin, DeadlineMax bound the deadline factor assigned
	// deterministically per job (default 1.2–2.0).
	DeadlineMin, DeadlineMax float64
	// AllowUnsorted accepts traces whose submit times regress between
	// lines and sorts them, instead of rejecting the file. Single-
	// cluster archive traces are submit-ordered, but multi-cluster
	// archives (interleaved per-cluster clocks) may not be; set this
	// when replaying such a file deliberately.
	AllowUnsorted bool
}

func (o ConvertOptions) withDefaults() ConvertOptions {
	if o.CPUPerProc <= 0 {
		o.CPUPerProc = 100
	}
	if o.MaxVCPUs <= 0 {
		o.MaxVCPUs = 4
	}
	if o.MemPerVCPU <= 0 {
		o.MemPerVCPU = 12
	}
	if o.DeadlineMin < 1 {
		o.DeadlineMin = 1.2
	}
	if o.DeadlineMax < o.DeadlineMin {
		o.DeadlineMax = 2.0
	}
	return o
}

// convert folds an archive job into the simulator's model. Jobs wider
// than MaxVCPUs are shrunk to MaxVCPUs with the duration stretched to
// conserve total work, the usual folding when replaying cluster
// traces on VM-sized slots.
func (o ConvertOptions) convert(id int, submit, run, procs float64) Job {
	vcpus := procs
	max := float64(o.MaxVCPUs)
	dur := run
	if vcpus > max {
		dur = run * vcpus / max
		vcpus = max
	}
	// Deterministic deadline factor from the job id, spanning the
	// configured band — reproducible without a random stream.
	span := o.DeadlineMax - o.DeadlineMin
	factor := o.DeadlineMin + span*float64(id%97)/96.0
	return Job{
		ID:             id,
		Name:           fmt.Sprintf("gwf-%d", id),
		Submit:         submit,
		Duration:       dur,
		CPU:            vcpus * o.CPUPerProc,
		Mem:            vcpus * o.MemPerVCPU,
		DeadlineFactor: factor,
	}
}
