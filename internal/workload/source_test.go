package workload

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// The streaming generator must be a perfect pipe of Generate: same
// config, same jobs, same order, same IDs. This is the equivalence
// that lets the scale harness run week-long synthetic traces without
// materializing them while keeping every downstream byte-identity
// oracle meaningful.
func TestGeneratorSourceMatchesGenerate(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := DefaultGeneratorConfig()
		cfg.Seed = seed
		cfg.Horizon = 2 * 24 * 3600
		want := MustGenerate(cfg)

		src, err := NewGeneratorSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Jobs, want.Jobs) {
			t.Fatalf("seed %d: streamed trace differs from Generate (%d vs %d jobs)",
				seed, got.Len(), want.Len())
		}
	}
}

// The reorder buffer's high-water mark is bounded by the burst
// backlog, not the horizon: a 28× longer trace must not grow it. This
// is the O(1)-memory property of streaming ingestion.
func TestGeneratorSourceMemoryBounded(t *testing.T) {
	peak := func(days float64) (maxPend, jobs int) {
		cfg := DefaultGeneratorConfig()
		cfg.Horizon = days * 24 * 3600
		src, err := NewGeneratorSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := src.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			jobs++
		}
		return src.MaxPending(), jobs
	}
	short, shortJobs := peak(1)
	long, longJobs := peak(28)
	if longJobs < 10*shortJobs {
		t.Fatalf("28-day trace only %d jobs vs %d for one day; generator broken", longJobs, shortJobs)
	}
	// The backlog holds at most a few overlapping bursts (mean burst
	// ≈ 35 jobs spread over seconds), regardless of trace length.
	if long > 512 {
		t.Fatalf("28-day reorder backlog %d; want O(burst), not O(trace)", long)
	}
	if long > 4*short+64 {
		t.Fatalf("backlog grew with the horizon: 1-day peak %d, 28-day peak %d", short, long)
	}
	t.Logf("reorder backlog: 1 day peak %d (%d jobs), 28 days peak %d (%d jobs)",
		short, shortJobs, long, longJobs)
}

// gwfGen lazily synthesizes an arbitrarily long, submit-ordered GWF
// file so the reader-side memory test never holds the input either.
type gwfGen struct {
	rows, next int
	buf        []byte
}

func (g *gwfGen) Read(p []byte) (int, error) {
	for len(g.buf) < len(p) && g.next < g.rows {
		g.buf = append(g.buf, fmt.Sprintf("%d %d 0 %d %d 0 0 1 0 0 1\n",
			g.next, g.next*3, 600+g.next%1800, 1+g.next%4)...)
		g.next++
	}
	if len(g.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

// Streaming a 400k-row GWF trace must keep the live heap flat: the
// materialized trace alone would be tens of megabytes, so a small
// peak-delta bound distinguishes O(1) ingestion from buffering.
func TestGWFSourceConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 400k rows")
	}
	const rows = 400_000
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	src, err := NewGWFSource(&gwfGen{rows: rows}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var peak uint64
	count := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count%100_000 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if d := ms.HeapAlloc - base; ms.HeapAlloc > base && d > peak {
				peak = d
			}
		}
	}
	if count != rows {
		t.Fatalf("streamed %d jobs, want %d", count, rows)
	}
	if peak > 32<<20 {
		t.Fatalf("peak live-heap delta %d MiB while streaming; ingestion is not O(1)", peak>>20)
	}
	t.Logf("streamed %d rows, peak live-heap delta %d KiB", count, peak>>10)
}

// The materializing AllowUnsorted path and the streaming path are
// separate code; on an already-sorted file they must agree exactly.
func TestGWFStreamingMatchesMaterializing(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# synthetic\n")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "%d %d 0 %d %d 0 0 1 0 0 1\n", i, 50+i*7, 300+i%900, 1+i%6)
	}
	streamed, err := ReadGWF(strings.NewReader(sb.String()), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := ReadGWF(strings.NewReader(sb.String()), ConvertOptions{AllowUnsorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Jobs, materialized.Jobs) {
		t.Fatal("streaming and materializing GWF paths disagree on a sorted file")
	}
}

// Satellite: the GWF/SWF readers used to skip rows with negative
// runtimes (and accepted NaN/Inf through ParseFloat), silently
// fabricating a different workload. Corruption is now an error on
// both ingestion paths; only the archives' zero-runtime/zero-width
// "cancelled" convention is skipped.
func TestGWFRejectsCorruptRows(t *testing.T) {
	good := "1 100 0 600 1 0 0 1 0 0 1\n"
	cases := []struct {
		name, row string
	}{
		{"negative runtime", "2 200 0 -1 1 0 0 1 0 0 1\n"},
		{"negative procs", "2 200 0 600 -2 0 0 1 0 0 1\n"},
		{"negative submit", "2 -50 0 600 1 0 0 1 0 0 1\n"},
		{"NaN runtime", "2 200 0 NaN 1 0 0 1 0 0 1\n"},
		{"Inf submit", "2 +Inf 0 600 1 0 0 1 0 0 1\n"},
		{"NaN procs", "2 200 0 600 nan 0 0 1 0 0 1\n"},
		{"short row", "2 200 0 600\n"},
		{"bad id", "x 200 0 600 1 0 0 1 0 0 1\n"},
	}
	for _, tc := range cases {
		for _, unsorted := range []bool{false, true} {
			_, err := ReadGWF(strings.NewReader(good+tc.row), ConvertOptions{AllowUnsorted: unsorted})
			if err == nil {
				t.Errorf("%s (unsorted=%v): corrupt row accepted", tc.name, unsorted)
			}
		}
		// SWF shares the parser and therefore the guards.
		if _, err := ReadSWF(strings.NewReader(good+tc.row), ConvertOptions{}); err == nil {
			t.Errorf("%s: corrupt swf row accepted", tc.name)
		}
	}
	// Zero runtime / zero procs remain the cancelled-job skip.
	tr, err := ReadGWF(strings.NewReader(good+"2 200 0 0 1 0 0 1 0 0 0\n3 300 0 600 0 0 0 1 0 0 0\n4 400 0 600 1 0 0 1 0 0 1\n"), ConvertOptions{})
	if err != nil {
		t.Fatalf("cancelled rows rejected: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("jobs = %d, want 2 (cancelled rows skipped)", tr.Len())
	}
}

// CSV rows with non-finite numerics parse via ParseFloat but used to
// sail through Validate (every NaN comparison fails open); they must
// be rejected now.
func TestCSVRejectsNonFinite(t *testing.T) {
	hdr := "id,name,submit_s,duration_s,cpu_pct,mem_units,deadline_factor,fault_tolerance,arch,hypervisor\n"
	for _, tc := range []struct{ name, row string }{
		{"NaN duration", "1,a,100.000,NaN,100.0,5.00,1.5000,0.0000,,\n"},
		{"Inf cpu", "1,a,100.000,10.000,+Inf,5.00,1.5000,0.0000,,\n"},
		{"NaN submit", "1,a,NaN,10.000,100.0,5.00,1.5000,0.0000,,\n"},
	} {
		if _, err := ReadCSV(strings.NewReader(hdr + tc.row)); err == nil {
			t.Errorf("%s: non-finite csv row accepted", tc.name)
		}
	}
}

// A source constructor must refuse the option it cannot honor.
func TestGWFSourceRejectsAllowUnsorted(t *testing.T) {
	if _, err := NewGWFSource(strings.NewReader(""), ConvertOptions{AllowUnsorted: true}); err == nil {
		t.Fatal("streaming source accepted AllowUnsorted")
	}
}

// TraceSource → ReadAll is the identity on a valid trace.
func TestTraceSourceRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Horizon = 6 * 3600
	orig := MustGenerate(cfg)
	back, err := ReadAll(NewTraceSource(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Jobs, orig.Jobs) {
		t.Fatal("TraceSource round trip altered the trace")
	}
}
