// Package workload provides the job traces driving the simulation:
// the native trace model, readers for the Grid Workloads Format (GWF)
// and the Standard Workload Format (SWF) used by the Grid Workloads
// Archive the paper draws from, a CSV serialization for generated
// traces, and a synthetic generator calibrated to the aggregate
// statistics of the Grid5000 week the paper evaluates on.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// Job is one HPC job to be encapsulated in a VM.
type Job struct {
	// ID is the job's identity within the trace.
	ID int
	// Name is an optional label (original trace job id).
	Name string
	// Submit is the arrival time in seconds from trace start.
	Submit float64
	// Duration is the execution time on a dedicated machine, seconds.
	Duration float64
	// CPU requirement in percent (100 = one core).
	CPU float64
	// Mem requirement in abstract units (node offers 100).
	Mem float64
	// DeadlineFactor multiplies Duration to produce the SLA deadline
	// (paper: 1.2–2.0 depending on job and user typology).
	DeadlineFactor float64
	// FaultTolerance is the job's Ftol in [0,1].
	FaultTolerance float64
	// Arch pins the job to an architecture ("" = any); part of the
	// hardware requirements P_req checks (§III-A1).
	Arch string
	// Hypervisor pins the job to a hypervisor ("" = any).
	Hypervisor string
}

// Deadline returns the absolute completion deadline.
func (j Job) Deadline() float64 { return j.Submit + j.DeadlineFactor*j.Duration }

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"submit", j.Submit}, {"duration", j.Duration}, {"CPU", j.CPU},
		{"memory", j.Mem}, {"deadline factor", j.DeadlineFactor},
		{"fault tolerance", j.FaultTolerance},
	} {
		// NaN fails every < comparison below open (NaN < 0 is false),
		// so non-finite fields must be rejected explicitly or they
		// poison the simulation's accounting.
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload: job %d has non-finite %s", j.ID, f.name)
		}
	}
	if j.Submit < 0 {
		return fmt.Errorf("workload: job %d has negative submit %.1f", j.ID, j.Submit)
	}
	if j.Duration <= 0 {
		return fmt.Errorf("workload: job %d has non-positive duration %.1f", j.ID, j.Duration)
	}
	if j.CPU <= 0 {
		return fmt.Errorf("workload: job %d has non-positive CPU %.1f", j.ID, j.CPU)
	}
	if j.Mem < 0 {
		return fmt.Errorf("workload: job %d has negative memory %.1f", j.ID, j.Mem)
	}
	if j.DeadlineFactor < 1 {
		return fmt.Errorf("workload: job %d deadline factor %.2f below 1", j.ID, j.DeadlineFactor)
	}
	return nil
}

// Trace is an ordered sequence of jobs.
type Trace struct {
	Jobs []Job
}

// Validate checks every job and submission ordering.
func (t *Trace) Validate() error {
	for i := range t.Jobs {
		if err := t.Jobs[i].Validate(); err != nil {
			return err
		}
		if i > 0 && t.Jobs[i].Submit < t.Jobs[i-1].Submit {
			return fmt.Errorf("workload: job %d submitted at %.1f before predecessor %.1f",
				t.Jobs[i].ID, t.Jobs[i].Submit, t.Jobs[i-1].Submit)
		}
	}
	return nil
}

// Sort orders jobs by submission time (stable), renumbering nothing.
func (t *Trace) Sort() {
	sort.SliceStable(t.Jobs, func(i, j int) bool { return t.Jobs[i].Submit < t.Jobs[j].Submit })
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Makespan returns the latest submit time plus that job's duration —
// a lower bound on the simulation horizon.
func (t *Trace) Makespan() float64 {
	var m float64
	for _, j := range t.Jobs {
		if end := j.Submit + j.Duration; end > m {
			m = end
		}
	}
	return m
}

// TotalCPUHours returns the aggregate work in CPU-hours: Σ CPU/100 ×
// Duration/3600. The paper's Grid week executes ≈ 6 055 CPU h.
func (t *Trace) TotalCPUHours() float64 {
	var sum float64
	for _, j := range t.Jobs {
		sum += (j.CPU / 100) * (j.Duration / 3600)
	}
	return sum
}

// Stats summarizes a trace for reporting.
type Stats struct {
	Jobs        int
	CPUHours    float64
	MeanCPU     float64
	MeanMem     float64
	MeanRuntime float64
	MaxRuntime  float64
	Span        float64 // last submit − first submit
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	s := Stats{Jobs: len(t.Jobs), CPUHours: t.TotalCPUHours()}
	if len(t.Jobs) == 0 {
		return s
	}
	var cpu, mem, run float64
	for _, j := range t.Jobs {
		cpu += j.CPU
		mem += j.Mem
		run += j.Duration
		if j.Duration > s.MaxRuntime {
			s.MaxRuntime = j.Duration
		}
	}
	n := float64(len(t.Jobs))
	s.MeanCPU = cpu / n
	s.MeanMem = mem / n
	s.MeanRuntime = run / n
	s.Span = t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	return s
}
