package workload

import (
	"fmt"
	"math"

	"energysched/internal/simkit"
)

// GeneratorConfig parameterizes the synthetic Grid5000-like trace
// generator. Defaults (see DefaultGeneratorConfig) are calibrated so a
// one-week trace reproduces the aggregate statistics of the Grid5000
// week of 2007-10-01 the paper evaluates on: ≈ 6 000 CPU-hours of
// work, jobs of 1–4 VCPUs with heavy-tailed runtimes, diurnal and
// weekday/weekend arrival modulation, and SLA deadline factors drawn
// from 1.2–2.0 per the paper's setup.
type GeneratorConfig struct {
	// Seed drives all random streams deterministically.
	Seed int64
	// Horizon is the trace length in seconds (a week by default).
	Horizon float64
	// JobsPerDay is the mean number of arrivals per 24 h at the
	// diurnal baseline.
	JobsPerDay float64
	// RuntimeMu, RuntimeSigma parameterize the lognormal runtime
	// (seconds): exp(N(mu, sigma)).
	RuntimeMu, RuntimeSigma float64
	// MinRuntime, MaxRuntime clamp runtimes (seconds).
	MinRuntime, MaxRuntime float64
	// CPUWeights gives the probability weight of requesting 1, 2, 3
	// or 4 VCPUs (index 0 = 1 VCPU).
	CPUWeights [4]float64
	// MemPerVCPU is the memory units requested per VCPU.
	MemPerVCPU float64
	// MemJitter adds ±jitter uniform noise to memory.
	MemJitter float64
	// DeadlineMin, DeadlineMax bound the deadline factor.
	DeadlineMin, DeadlineMax float64
	// DiurnalAmplitude in [0,1): arrival-rate swing between night
	// trough and afternoon peak.
	DiurnalAmplitude float64
	// WeekendFactor scales arrival rate on days 6–7.
	WeekendFactor float64
	// BurstProb is the chance an arrival is a burst head; bursts
	// submit BurstSize extra near-simultaneous jobs (bag-of-tasks
	// behaviour typical of grid traces).
	BurstProb float64
	// BurstSize is the mean extra jobs in a burst.
	BurstSize float64
}

// DefaultGeneratorConfig returns the calibrated Grid5000-like
// configuration for a one-week trace.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Seed:             1,
		Horizon:          7 * 24 * 3600,
		JobsPerDay:       260,
		RuntimeMu:        7.6, // median ≈ 2000 s
		RuntimeSigma:     1.25,
		MinRuntime:       60,
		MaxRuntime:       24 * 3600,
		CPUWeights:       [4]float64{0.68, 0.20, 0.05, 0.07},
		MemPerVCPU:       5,
		MemJitter:        2,
		DeadlineMin:      1.2,
		DeadlineMax:      2.0,
		DiurnalAmplitude: 0.45,
		WeekendFactor:    0.55,
		// Grid traces are dominated by bag-of-tasks submissions:
		// occasional bursts of many near-simultaneous jobs. These
		// spikes are what separate consolidating policies (which
		// absorb them at ~4 jobs per node) from one-job-per-node or
		// random placement.
		BurstProb: 0.025,
		BurstSize: 35,
	}
}

// Validate reports configuration errors.
func (c GeneratorConfig) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("workload: horizon must be positive")
	}
	if c.JobsPerDay <= 0 {
		return fmt.Errorf("workload: jobs per day must be positive")
	}
	if c.DeadlineMin < 1 || c.DeadlineMax < c.DeadlineMin {
		return fmt.Errorf("workload: invalid deadline factors [%.2f, %.2f]", c.DeadlineMin, c.DeadlineMax)
	}
	if c.MinRuntime <= 0 || c.MaxRuntime < c.MinRuntime {
		return fmt.Errorf("workload: invalid runtime bounds [%.1f, %.1f]", c.MinRuntime, c.MaxRuntime)
	}
	var w float64
	for _, x := range c.CPUWeights {
		if x < 0 {
			return fmt.Errorf("workload: negative CPU weight")
		}
		w += x
	}
	if w <= 0 {
		return fmt.Errorf("workload: CPU weights sum to zero")
	}
	return nil
}

// Generate produces a synthetic trace. The same config always yields
// the same trace.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arrivals := simkit.NewStream(cfg.Seed, "arrivals")
	runtimes := simkit.NewStream(cfg.Seed, "runtimes")
	shapes := simkit.NewStream(cfg.Seed, "shapes")
	deadlines := simkit.NewStream(cfg.Seed, "deadlines")

	baseRate := cfg.JobsPerDay / (24 * 3600) // jobs per second at baseline
	// Thinning bound: the modulated rate never exceeds base × (1+amp).
	maxRate := baseRate * (1 + cfg.DiurnalAmplitude)

	tr := &Trace{}
	id := 0
	t := 0.0
	for {
		// Poisson thinning for the non-homogeneous arrival process.
		t += arrivals.Exp(maxRate)
		if t >= cfg.Horizon {
			break
		}
		if arrivals.Float64() > cfg.rateAt(t)/maxRate {
			continue
		}
		n := 1
		if arrivals.Float64() < cfg.BurstProb {
			n += 1 + int(arrivals.Exp(1.0/cfg.BurstSize))
		}
		for k := 0; k < n; k++ {
			at := t + float64(k)*shapes.Uniform(0.5, 3.0)
			if at >= cfg.Horizon {
				break
			}
			tr.Jobs = append(tr.Jobs, cfg.newJob(id, at, runtimes, shapes, deadlines))
			id++
		}
	}
	tr.Sort()
	return tr, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg GeneratorConfig) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// rateAt returns the instantaneous arrival rate at trace time t,
// applying diurnal and weekend modulation. The trace starts on a
// Monday at midnight, like the paper's Grid5000 week.
func (c GeneratorConfig) rateAt(t float64) float64 {
	base := c.JobsPerDay / (24 * 3600)
	day := int(t/86400) % 7
	hour := (t - 86400*float64(int(t/86400))) / 3600
	// Diurnal: trough ~04:00, peak ~15:00, sinusoidal.
	phase := (hour - 15) / 24 * 2 * math.Pi
	diurnal := 1 + c.DiurnalAmplitude*math.Cos(phase)
	rate := base * diurnal
	if day >= 5 {
		rate *= c.WeekendFactor
	}
	return rate
}

func (c GeneratorConfig) newJob(id int, at float64, runtimes, shapes, deadlines *simkit.Stream) Job {
	run := runtimes.LogNormal(c.RuntimeMu, c.RuntimeSigma)
	if run < c.MinRuntime {
		run = c.MinRuntime
	}
	if run > c.MaxRuntime {
		run = c.MaxRuntime
	}
	vcpus := pickWeighted(shapes, c.CPUWeights)
	mem := float64(vcpus)*c.MemPerVCPU + shapes.Uniform(-c.MemJitter, c.MemJitter)
	if mem < 1 {
		mem = 1
	}
	return Job{
		ID:             id,
		Name:           fmt.Sprintf("g5k-%d", id),
		Submit:         at,
		Duration:       run,
		CPU:            float64(vcpus) * 100,
		Mem:            mem,
		DeadlineFactor: deadlines.Uniform(c.DeadlineMin, c.DeadlineMax),
	}
}

// pickWeighted draws 1..len(w) proportionally to w.
func pickWeighted(s *simkit.Stream, w [4]float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	r := s.Float64() * total
	for i, x := range w {
		if r < x {
			return i + 1
		}
		r -= x
	}
	return len(w)
}
