package workload

import (
	"container/heap"
	"io"

	"energysched/internal/simkit"
)

// JobSource is an incremental workload iterator: Next yields jobs in
// non-decreasing submit order and returns io.EOF after the last one.
// It is the streaming counterpart of Trace — a week-long archive file
// or a multi-day synthetic run can feed a simulation job by job
// without ever materializing the whole trace in memory, which is what
// keeps the scale harness's ingestion O(1) in trace length.
//
// Every job a source yields is individually Validate-d and ordered;
// a source that cannot uphold the ordering (a corrupt file) reports
// an error from Next instead of reordering silently.
type JobSource interface {
	Next() (Job, error)
}

// ReadAll drains a source into a materialized Trace. It is how the
// whole-trace readers (ReadGWF, ReadCSV) are built on top of their
// streaming sources, guaranteeing the two ingestion paths accept
// exactly the same inputs.
func ReadAll(src JobSource) (*Trace, error) {
	tr := &Trace{}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// TraceSource adapts a materialized Trace to the JobSource interface,
// so harnesses written against streaming ingestion also accept
// pre-built traces.
type TraceSource struct {
	jobs []Job
	i    int
}

// NewTraceSource returns a source yielding tr's jobs in order.
func NewTraceSource(tr *Trace) *TraceSource {
	return &TraceSource{jobs: tr.Jobs}
}

// Next implements JobSource.
func (s *TraceSource) Next() (Job, error) {
	if s.i >= len(s.jobs) {
		return Job{}, io.EOF
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// --- streaming synthetic generator ---

// GeneratorSource streams the synthetic Grid5000-like generator
// (see Generate) without materializing the trace. The arrival process
// emits jobs in generation order, but burst members are spread a few
// seconds forward of the burst head, so a bounded reorder buffer (a
// min-heap keyed by submit time) holds the short backlog: a pending
// job can be emitted as soon as the arrival clock passes its submit
// time, because every job generated later is stamped at or after the
// clock. The buffer's high-water mark is therefore bounded by the
// burst backlog — independent of the horizon — which the memory test
// asserts via MaxPending.
//
// Draining a GeneratorSource yields exactly the jobs of
// Generate(cfg), in the same order with the same IDs.
type GeneratorSource struct {
	cfg     GeneratorConfig
	maxRate float64

	arrivals, runtimes, shapes, deadlines *simkit.Stream

	t       float64
	id      int
	done    bool
	pending jobHeap
	maxPend int
}

// NewGeneratorSource builds a streaming generator for cfg.
func NewGeneratorSource(cfg GeneratorConfig) (*GeneratorSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GeneratorSource{
		cfg:       cfg,
		maxRate:   cfg.JobsPerDay / (24 * 3600) * (1 + cfg.DiurnalAmplitude),
		arrivals:  simkit.NewStream(cfg.Seed, "arrivals"),
		runtimes:  simkit.NewStream(cfg.Seed, "runtimes"),
		shapes:    simkit.NewStream(cfg.Seed, "shapes"),
		deadlines: simkit.NewStream(cfg.Seed, "deadlines"),
	}, nil
}

// MaxPending returns the reorder buffer's high-water mark so far. It
// is bounded by the burst backlog, not the trace length — the scale
// harness's O(1)-memory assertion reads it.
func (s *GeneratorSource) MaxPending() int { return s.maxPend }

// Next implements JobSource.
func (s *GeneratorSource) Next() (Job, error) {
	for {
		// A pending job at or before the arrival clock is final: every
		// job generated from here on is stamped at or after the clock,
		// and ties break by ID (matching Generate's stable sort).
		if len(s.pending) > 0 && (s.done || s.pending[0].Submit <= s.t) {
			return heap.Pop(&s.pending).(Job), nil
		}
		if s.done {
			return Job{}, io.EOF
		}
		// One step of Generate's thinned Poisson arrival process — the
		// stream draws happen in exactly the same order, so the two
		// paths produce identical jobs.
		s.t += s.arrivals.Exp(s.maxRate)
		if s.t >= s.cfg.Horizon {
			s.done = true
			continue
		}
		if s.arrivals.Float64() > s.cfg.rateAt(s.t)/s.maxRate {
			continue
		}
		n := 1
		if s.arrivals.Float64() < s.cfg.BurstProb {
			n += 1 + int(s.arrivals.Exp(1.0/s.cfg.BurstSize))
		}
		for k := 0; k < n; k++ {
			at := s.t + float64(k)*s.shapes.Uniform(0.5, 3.0)
			if at >= s.cfg.Horizon {
				break
			}
			heap.Push(&s.pending, s.cfg.newJob(s.id, at, s.runtimes, s.shapes, s.deadlines))
			s.id++
		}
		if len(s.pending) > s.maxPend {
			s.maxPend = len(s.pending)
		}
	}
}

// jobHeap orders jobs by (Submit, ID) — identical to the stable
// submit-time sort Generate applies, since IDs are assigned in
// generation order.
type jobHeap []Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Submit != h[j].Submit {
		return h[i].Submit < h[j].Submit
	}
	return h[i].ID < h[j].ID
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
