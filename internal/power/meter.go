package power

// Meter integrates instantaneous power over virtual time to produce
// energy totals. The datacenter harness calls Observe whenever a
// node's power draw changes; the meter accumulates the previous level
// over the elapsed interval (exact for piecewise-constant draw, which
// is what an event-driven model produces).
type Meter struct {
	lastTime  float64
	lastWatts float64
	joules    float64
	started   bool
}

// NewMeter returns a meter starting at time t0 with draw watts.
func NewMeter(t0, watts float64) *Meter {
	return &Meter{lastTime: t0, lastWatts: watts, started: true}
}

// Observe records that at time t the draw became watts. Time must be
// monotonically non-decreasing.
func (m *Meter) Observe(t, watts float64) {
	if !m.started {
		m.lastTime, m.lastWatts, m.started = t, watts, true
		return
	}
	if t < m.lastTime {
		panic("power: meter observed time going backwards")
	}
	m.joules += m.lastWatts * (t - m.lastTime)
	m.lastTime = t
	m.lastWatts = watts
}

// Close integrates up to time t without changing the draw level.
func (m *Meter) Close(t float64) {
	m.Observe(t, m.lastWatts)
}

// JoulesAt returns the energy accumulated through time t — the
// current integral extended at the present draw — without mutating
// the meter. JoulesAt(t) equals what Joules() would return after
// Close(t), bit for bit (same additions in the same order).
func (m *Meter) JoulesAt(t float64) float64 {
	if !m.started || t <= m.lastTime {
		return m.joules
	}
	return m.joules + m.lastWatts*(t-m.lastTime)
}

// KWhAt is JoulesAt in kWh.
func (m *Meter) KWhAt(t float64) float64 { return m.JoulesAt(t) / 3.6e6 }

// Joules returns the accumulated energy in joules (watt-seconds).
func (m *Meter) Joules() float64 { return m.joules }

// WattHours returns the accumulated energy in Wh.
func (m *Meter) WattHours() float64 { return m.joules / 3600 }

// KWh returns the accumulated energy in kWh.
func (m *Meter) KWh() float64 { return m.joules / 3.6e6 }

// CurrentWatts returns the most recently observed draw.
func (m *Meter) CurrentWatts() float64 { return m.lastWatts }
