// Package power models the electrical consumption of datacenter nodes.
//
// The paper measures a 4-way Xen host (Table I) and concludes that
// consumption depends only on the total CPU consumed by the VMs, not
// on how many VMs consume it: 230 W idle, 259 W at 100 % CPU, 273 W at
// 200 %, 291 W at 300 %, 304 W at 400 %. InterpolatedModel encodes
// exactly that curve; LinearModel is the common idle+slope abstraction
// used as a comparison point.
package power

import (
	"fmt"
	"sort"
)

// Model maps a node's total CPU utilization to instantaneous power.
type Model interface {
	// Power returns watts drawn when the node consumes cpu percent of
	// CPU in total (100 = one full core). Utilization is clamped to
	// [0, Capacity].
	Power(cpu float64) float64
	// Capacity returns the CPU percentage at which the node saturates
	// (400 for the paper's 4-way machine).
	Capacity() float64
	// IdlePower returns Power(0).
	IdlePower() float64
	// PeakPower returns Power(Capacity()).
	PeakPower() float64
}

// Point is a measured (cpu%, watts) sample.
type Point struct {
	CPU   float64
	Watts float64
}

// InterpolatedModel linearly interpolates between measured points,
// exactly reproducing a measured power curve such as the paper's
// Table I.
type InterpolatedModel struct {
	points []Point
}

// NewInterpolatedModel builds a model from measured samples. Points
// are sorted by CPU; at least two points are required and CPU values
// must be distinct.
func NewInterpolatedModel(points []Point) (*InterpolatedModel, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("power: need at least 2 points, got %d", len(points))
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].CPU < ps[j].CPU })
	for i := 1; i < len(ps); i++ {
		if ps[i].CPU == ps[i-1].CPU {
			return nil, fmt.Errorf("power: duplicate CPU point %.1f", ps[i].CPU)
		}
	}
	return &InterpolatedModel{points: ps}, nil
}

// MustInterpolated is NewInterpolatedModel that panics on error, for
// package-level defaults built from known-good literals.
func MustInterpolated(points []Point) *InterpolatedModel {
	m, err := NewInterpolatedModel(points)
	if err != nil {
		panic(err)
	}
	return m
}

// Power implements Model by piecewise-linear interpolation, clamping
// outside the measured range.
func (m *InterpolatedModel) Power(cpu float64) float64 {
	ps := m.points
	if cpu <= ps[0].CPU {
		return ps[0].Watts
	}
	last := ps[len(ps)-1]
	if cpu >= last.CPU {
		return last.Watts
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].CPU >= cpu })
	lo, hi := ps[i-1], ps[i]
	frac := (cpu - lo.CPU) / (hi.CPU - lo.CPU)
	return lo.Watts + frac*(hi.Watts-lo.Watts)
}

// Capacity implements Model.
func (m *InterpolatedModel) Capacity() float64 { return m.points[len(m.points)-1].CPU }

// IdlePower implements Model.
func (m *InterpolatedModel) IdlePower() float64 { return m.points[0].Watts }

// PeakPower implements Model.
func (m *InterpolatedModel) PeakPower() float64 { return m.points[len(m.points)-1].Watts }

// LinearModel is the classic idle + slope·utilization model.
type LinearModel struct {
	Idle float64 // watts at zero load
	Peak float64 // watts at full load
	Cap  float64 // CPU capacity in percent
}

// NewLinearModel builds a linear model; peak must be >= idle and cap
// positive.
func NewLinearModel(idle, peak, capacity float64) (*LinearModel, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("power: capacity must be positive, got %.1f", capacity)
	}
	if peak < idle {
		return nil, fmt.Errorf("power: peak %.1f below idle %.1f", peak, idle)
	}
	return &LinearModel{Idle: idle, Peak: peak, Cap: capacity}, nil
}

// Power implements Model.
func (m *LinearModel) Power(cpu float64) float64 {
	if cpu < 0 {
		cpu = 0
	}
	if cpu > m.Cap {
		cpu = m.Cap
	}
	return m.Idle + (m.Peak-m.Idle)*cpu/m.Cap
}

// Capacity implements Model.
func (m *LinearModel) Capacity() float64 { return m.Cap }

// IdlePower implements Model.
func (m *LinearModel) IdlePower() float64 { return m.Idle }

// PeakPower implements Model.
func (m *LinearModel) PeakPower() float64 { return m.Peak }

// PaperTableI returns the power model measured in the paper's Table I
// for the 4-way Xen host: 230 W idle rising to 304 W at 400 % CPU.
func PaperTableI() *InterpolatedModel {
	return MustInterpolated([]Point{
		{CPU: 0, Watts: 230},
		{CPU: 100, Watts: 259},
		{CPU: 200, Watts: 273},
		{CPU: 300, Watts: 291},
		{CPU: 400, Watts: 304},
	})
}

// Scaled wraps a model, scaling both CPU capacity and wattage by a
// factor; used to derive heterogeneous node classes from the measured
// reference machine.
type Scaled struct {
	Base   Model
	Factor float64
}

// Power implements Model.
func (s *Scaled) Power(cpu float64) float64 {
	return s.Base.Power(cpu/s.Factor) * s.Factor
}

// Capacity implements Model.
func (s *Scaled) Capacity() float64 { return s.Base.Capacity() * s.Factor }

// IdlePower implements Model.
func (s *Scaled) IdlePower() float64 { return s.Base.IdlePower() * s.Factor }

// PeakPower implements Model.
func (s *Scaled) PeakPower() float64 { return s.Base.PeakPower() * s.Factor }
