package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperTableIPoints(t *testing.T) {
	m := PaperTableI()
	cases := []struct{ cpu, want float64 }{
		{0, 230}, {100, 259}, {200, 273}, {300, 291}, {400, 304},
	}
	for _, c := range cases {
		if got := m.Power(c.cpu); got != c.want {
			t.Errorf("Power(%v) = %v, want %v", c.cpu, got, c.want)
		}
	}
}

func TestInterpolatedMidpoints(t *testing.T) {
	m := PaperTableI()
	// Halfway between 0 and 100: (230+259)/2.
	if got := m.Power(50); math.Abs(got-244.5) > 1e-9 {
		t.Errorf("Power(50) = %v, want 244.5", got)
	}
	if got := m.Power(350); math.Abs(got-297.5) > 1e-9 {
		t.Errorf("Power(350) = %v, want 297.5", got)
	}
}

func TestInterpolatedClamping(t *testing.T) {
	m := PaperTableI()
	if got := m.Power(-50); got != 230 {
		t.Errorf("Power(-50) = %v, want clamp to 230", got)
	}
	if got := m.Power(1e6); got != 304 {
		t.Errorf("Power(1e6) = %v, want clamp to 304", got)
	}
}

func TestInterpolatedAccessors(t *testing.T) {
	m := PaperTableI()
	if m.Capacity() != 400 || m.IdlePower() != 230 || m.PeakPower() != 304 {
		t.Errorf("accessors = (%v, %v, %v)", m.Capacity(), m.IdlePower(), m.PeakPower())
	}
}

func TestInterpolatedValidation(t *testing.T) {
	if _, err := NewInterpolatedModel([]Point{{0, 230}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewInterpolatedModel([]Point{{0, 230}, {0, 259}}); err == nil {
		t.Error("duplicate CPU accepted")
	}
	if _, err := NewInterpolatedModel([]Point{{100, 259}, {0, 230}}); err != nil {
		t.Errorf("unsorted points rejected: %v", err)
	}
}

func TestInterpolatedMonotoneProperty(t *testing.T) {
	m := PaperTableI()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 500), math.Mod(b, 500)
		if a > b {
			a, b = b, a
		}
		return m.Power(a) <= m.Power(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearModel(t *testing.T) {
	m, err := NewLinearModel(230, 304, 400)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Power(200); got != 267 {
		t.Errorf("linear Power(200) = %v, want 267", got)
	}
	if m.Power(-10) != 230 || m.Power(500) != 304 {
		t.Error("linear clamping broken")
	}
	if _, err := NewLinearModel(300, 200, 400); err == nil {
		t.Error("peak < idle accepted")
	}
	if _, err := NewLinearModel(1, 2, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestScaledModel(t *testing.T) {
	s := &Scaled{Base: PaperTableI(), Factor: 2}
	if s.Capacity() != 800 {
		t.Errorf("scaled capacity = %v", s.Capacity())
	}
	if s.IdlePower() != 460 || s.PeakPower() != 608 {
		t.Errorf("scaled idle/peak = %v/%v", s.IdlePower(), s.PeakPower())
	}
	// Power at half of the scaled capacity equals 2× base at half.
	if got, want := s.Power(400), 2*PaperTableI().Power(200); got != want {
		t.Errorf("scaled Power(400) = %v, want %v", got, want)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(0, 100)
	m.Observe(10, 200) // 100 W for 10 s = 1000 J
	m.Observe(20, 0)   // 200 W for 10 s = 2000 J
	m.Close(30)        // 0 W for 10 s
	if got := m.Joules(); got != 3000 {
		t.Errorf("Joules = %v, want 3000", got)
	}
	if got := m.WattHours(); math.Abs(got-3000.0/3600) > 1e-12 {
		t.Errorf("WattHours = %v", got)
	}
	if got := m.KWh(); math.Abs(got-3000.0/3.6e6) > 1e-15 {
		t.Errorf("KWh = %v", got)
	}
}

func TestMeterBackwardsPanics(t *testing.T) {
	m := NewMeter(10, 100)
	defer func() {
		if recover() == nil {
			t.Error("backwards observation did not panic")
		}
	}()
	m.Observe(5, 50)
}

func TestMeterZeroDuration(t *testing.T) {
	m := NewMeter(0, 100)
	m.Observe(0, 250) // level change at the same instant
	m.Observe(1, 250)
	if got := m.Joules(); got != 250 {
		t.Errorf("Joules = %v, want 250", got)
	}
	if m.CurrentWatts() != 250 {
		t.Errorf("CurrentWatts = %v", m.CurrentWatts())
	}
}

// Property: the meter's integral of a piecewise-constant signal equals
// the hand-computed sum.
func TestMeterSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		m := NewMeter(0, 0)
		tm := 0.0
		var want float64
		level := 0.0
		for _, s := range steps {
			dt := float64(s%100) + 0.5
			newLevel := float64(s % 400)
			want += level * dt
			tm += dt
			m.Observe(tm, newLevel)
			level = newLevel
		}
		return math.Abs(m.Joules()-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
