// Package economics implements the provider-revenue view the paper
// defers to future work (§VI: "new enhancements to the scheduling
// policy such as … economical decision making will be included"):
// jobs pay for the CPU they reserve, discounted by the SLA
// satisfaction actually delivered (a client whose deadline slipped to
// twice the agreed bound pays nothing — the same shape as the
// satisfaction metric); the datacenter pays for every watt-hour it
// draws. Profit = revenue − energy cost unifies the power/QoS
// trade-off in one number, which is how a provider would actually
// pick λ thresholds or a policy.
package economics

import (
	"fmt"

	"energysched/internal/metrics"
	"energysched/internal/sla"
	"energysched/internal/vm"
)

// Tariff prices the datacenter's business.
type Tariff struct {
	// PricePerCPUHour is the full-satisfaction payment for one
	// CPU-hour of reserved capacity (currency units).
	PricePerCPUHour float64
	// EnergyPricePerKWh is what the provider pays the utility.
	EnergyPricePerKWh float64
	// PenaltyFloor, in [0, 1], is the fraction of the payment that is
	// refunded at S = 0 (1 = full refund; the default). Values below
	// 1 model contracts with capped penalties.
	PenaltyFloor float64
}

// DefaultTariff returns a plausible 2010-era HPC hosting tariff:
// 0.10 currency units per CPU-hour, 0.12 per kWh.
func DefaultTariff() Tariff {
	return Tariff{PricePerCPUHour: 0.10, EnergyPricePerKWh: 0.12, PenaltyFloor: 1}
}

// Validate reports tariff errors.
func (t Tariff) Validate() error {
	if t.PricePerCPUHour < 0 || t.EnergyPricePerKWh < 0 {
		return fmt.Errorf("economics: negative prices")
	}
	if t.PenaltyFloor < 0 || t.PenaltyFloor > 1 {
		return fmt.Errorf("economics: penalty floor %.2f outside [0,1]", t.PenaltyFloor)
	}
	return nil
}

// Outcome is the economic result of one simulation run.
type Outcome struct {
	// Revenue collected from clients.
	Revenue float64
	// MaxRevenue is what a perfect-satisfaction run would have earned
	// (Revenue / MaxRevenue is the realized fraction).
	MaxRevenue float64
	// EnergyCost paid to the utility.
	EnergyCost float64
	// Profit = Revenue − EnergyCost.
	Profit float64
	// SLARefunds = MaxRevenue − Revenue.
	SLARefunds float64
}

// JobPayment returns what one completed job pays under the tariff:
// the reserved CPU-hours priced at full rate, scaled by the
// satisfaction fraction (bounded below by 1 − PenaltyFloor).
func (t Tariff) JobPayment(v *vm.VM) float64 {
	if v.State != vm.Completed {
		return 0
	}
	full := t.PricePerCPUHour * (v.Req.CPU / 100) * (v.Duration / 3600)
	s := sla.Satisfaction(v.ExecTime(), v.Deadline-v.Submit) / 100
	frac := 1 - t.PenaltyFloor*(1-s)
	if frac < 0 {
		frac = 0
	}
	return full * frac
}

// Evaluate computes the economic outcome of a run from its per-job
// results and the energy total of its report.
func (t Tariff) Evaluate(vms []*vm.VM, rep metrics.Report) (Outcome, error) {
	if err := t.Validate(); err != nil {
		return Outcome{}, err
	}
	var out Outcome
	for _, v := range vms {
		if v.State != vm.Completed {
			continue
		}
		out.MaxRevenue += t.PricePerCPUHour * (v.Req.CPU / 100) * (v.Duration / 3600)
		out.Revenue += t.JobPayment(v)
	}
	out.EnergyCost = rep.EnergyKWh * t.EnergyPricePerKWh
	out.Profit = out.Revenue - out.EnergyCost
	out.SLARefunds = out.MaxRevenue - out.Revenue
	return out, nil
}

// String renders the outcome for reports.
func (o Outcome) String() string {
	return fmt.Sprintf("revenue %8.2f (of %8.2f)  energy cost %7.2f  refunds %7.2f  profit %8.2f",
		o.Revenue, o.MaxRevenue, o.EnergyCost, o.SLARefunds, o.Profit)
}
