package economics

import (
	"math"
	"testing"

	"energysched/internal/metrics"
	"energysched/internal/vm"
)

func completedVM(id int, cpu, dur, deadlineFactor, execFactor float64) *vm.VM {
	v := vm.New(id, vm.Requirements{CPU: cpu, Mem: 5}, 0, dur, deadlineFactor*dur)
	v.State = vm.Completed
	v.Finish = execFactor * dur
	return v
}

func TestJobPaymentFullSatisfaction(t *testing.T) {
	tariff := DefaultTariff()
	// 2 cores × 1 h, finished well within deadline: pays 2 × 0.10.
	v := completedVM(0, 200, 3600, 1.5, 1.0)
	if got := tariff.JobPayment(v); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("payment = %v, want 0.20", got)
	}
}

func TestJobPaymentZeroAtDoubleDeadline(t *testing.T) {
	tariff := DefaultTariff()
	// Finished at 3× the deadline: S = 0 → full refund.
	v := completedVM(0, 100, 3600, 1.2, 3.6)
	if got := tariff.JobPayment(v); got != 0 {
		t.Errorf("payment = %v, want 0", got)
	}
}

func TestJobPaymentPartial(t *testing.T) {
	tariff := DefaultTariff()
	// Deadline 1.5×dur; exec 1.5×1.5 = 2.25×dur → 50 % over → S = 50.
	v := completedVM(0, 100, 3600, 1.5, 2.25)
	want := 0.10 * 0.5
	if got := tariff.JobPayment(v); math.Abs(got-want) > 1e-12 {
		t.Errorf("payment = %v, want %v", got, want)
	}
}

func TestJobPaymentPenaltyFloor(t *testing.T) {
	tariff := DefaultTariff()
	tariff.PenaltyFloor = 0.4               // at most 40 % refunded
	v := completedVM(0, 100, 3600, 1.2, 10) // S = 0
	want := 0.10 * 0.6
	if got := tariff.JobPayment(v); math.Abs(got-want) > 1e-12 {
		t.Errorf("floored payment = %v, want %v", got, want)
	}
}

func TestJobPaymentIncompleteJobPaysNothing(t *testing.T) {
	tariff := DefaultTariff()
	v := vm.New(0, vm.Requirements{CPU: 100, Mem: 5}, 0, 3600, 5400)
	v.State = vm.Running
	if got := tariff.JobPayment(v); got != 0 {
		t.Errorf("running job paid %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	tariff := DefaultTariff()
	vms := []*vm.VM{
		completedVM(0, 200, 3600, 1.5, 1.0),  // pays 0.20
		completedVM(1, 100, 3600, 1.5, 2.25), // pays 0.05 of 0.10
	}
	rep := metrics.Report{EnergyKWh: 10}
	out, err := tariff.Evaluate(vms, rep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Revenue-0.25) > 1e-12 {
		t.Errorf("revenue = %v, want 0.25", out.Revenue)
	}
	if math.Abs(out.MaxRevenue-0.30) > 1e-12 {
		t.Errorf("max revenue = %v, want 0.30", out.MaxRevenue)
	}
	if math.Abs(out.EnergyCost-1.2) > 1e-12 {
		t.Errorf("energy cost = %v, want 1.2", out.EnergyCost)
	}
	if math.Abs(out.Profit-(0.25-1.2)) > 1e-12 {
		t.Errorf("profit = %v", out.Profit)
	}
	if math.Abs(out.SLARefunds-0.05) > 1e-12 {
		t.Errorf("refunds = %v, want 0.05", out.SLARefunds)
	}
}

func TestEvaluateValidatesTariff(t *testing.T) {
	bad := Tariff{PricePerCPUHour: -1}
	if _, err := bad.Evaluate(nil, metrics.Report{}); err == nil {
		t.Error("negative price accepted")
	}
	bad = Tariff{PenaltyFloor: 2}
	if _, err := bad.Evaluate(nil, metrics.Report{}); err == nil {
		t.Error("penalty floor > 1 accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Revenue: 1, MaxRevenue: 2, EnergyCost: 0.5, Profit: 0.5, SLARefunds: 1}
	if o.String() == "" {
		t.Error("empty outcome string")
	}
}
