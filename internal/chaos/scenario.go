package chaos

import (
	"fmt"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/power"
	"energysched/internal/simkit"
	"energysched/internal/workload"
)

// HeterogeneousClasses builds a mixed fleet of total nodes across
// four hardware classes — the paper's evaluation is 100 homogeneous-
// capacity machines, so scale scenarios deliberately mix capacities
// and costs instead:
//
//	big    10%  8 cores, 200 mem, fast ops        — consolidation magnets
//	std    60%  4 cores, 100 mem, paper medium    — the bulk
//	small  20%  2 cores,  50 mem, slow ops        — fragmentation pressure
//	flaky  10%  4 cores, 100 mem, Frel 0.95       — organic failures when enabled
//
// All x86_64/xen with the Table I power model, so every job can land
// anywhere and differences come from capacity, costs and reliability.
func HeterogeneousClasses(total int) []cluster.Class {
	if total < 10 {
		total = 10
	}
	big, small, flaky := total/10, total/5, total/10
	std := total - big - small - flaky
	mk := func(name string, count int, cpu, mem, cc, cm, rel float64) cluster.Class {
		return cluster.Class{
			Name: name, Count: count,
			CPU: cpu, Mem: mem,
			CreateCost: cc, MigrateCost: cm,
			BootTime:    100,
			Arch:        "x86_64",
			Hypervisor:  "xen",
			Reliability: rel,
			Power:       power.PaperTableI(),
		}
	}
	return []cluster.Class{
		mk("big", big, 800, 200, 30, 40, 1.0),
		mk("std", std, 400, 100, 40, 60, 1.0),
		mk("small", small, 200, 50, 60, 80, 1.0),
		mk("flaky", flaky, 400, 100, 40, 60, 0.95),
	}
}

// Scenario is one reproducible scale/chaos run: a heterogeneous fleet
// of Nodes, a streaming synthetic trace of Days × JobsPerDay, a
// seeded fault plan, and the λ thresholds. Every field is part of the
// seed: two equal Scenarios produce byte-identical reports.
type Scenario struct {
	Name string
	// Nodes is the heterogeneous fleet size.
	Nodes int
	// Days is the trace horizon (multi-day is the point).
	Days float64
	// JobsPerDay is the synthetic arrival rate.
	JobsPerDay float64
	// Seed drives the trace, the engine and the fault plan.
	Seed int64
	// LambdaMin, LambdaMax are the power-manager thresholds (0,0 =
	// paper defaults 30/90 via datacenter).
	LambdaMin, LambdaMax float64
	// TickSeconds is the housekeeping tick (0 = datacenter default
	// 60 s; scale runs use a coarser tick).
	TickSeconds float64
	// MTTR is the repair time for injected crashes (0 = default 1800).
	MTTR float64
	// Crashes, Flaps parameterize the fault plan (see PlanConfig).
	Crashes, Flaps int
}

// Scenario10k is the canonical acceptance scenario: 10 000
// heterogeneous nodes, a two-day streaming trace, one-shot crashes
// plus a flapping node, coarse ticks so the run stays CI-sized.
func Scenario10k() Scenario {
	return Scenario{
		Name:        "10k-2day",
		Nodes:       10_000,
		Days:        2,
		JobsPerDay:  400,
		Seed:        7,
		TickSeconds: 600,
		MTTR:        1800,
		Crashes:     3,
		Flaps:       1,
	}
}

// Horizon returns the trace horizon in seconds.
func (s Scenario) Horizon() float64 { return s.Days * 24 * 3600 }

// GeneratorConfig returns the streaming trace config for the
// scenario.
func (s Scenario) GeneratorConfig() workload.GeneratorConfig {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = s.Seed
	cfg.Horizon = s.Horizon()
	cfg.JobsPerDay = s.JobsPerDay
	return cfg
}

// Plan returns the scenario's fault schedule.
func (s Scenario) Plan() Plan {
	mttr := s.MTTR
	if mttr == 0 {
		mttr = 1800
	}
	return NewPlan(PlanConfig{
		Seed:    s.Seed,
		Horizon: s.Horizon(),
		Nodes:   s.Nodes,
		Crashes: s.Crashes,
		Flaps:   s.Flaps,
		MTTR:    mttr,
	})
}

// Sim builds the scenario's simulation with the score-based scheduler
// at the given shard count (0 = serial, -1 = GOMAXPROCS, K >= 1 = K
// shards — the byte-identity axis).
func (s Scenario) Sim(shards int) (*datacenter.Simulation, error) {
	return s.sim(shards, nil)
}

func (s Scenario) sim(shards int, sink obs.TraceSink) (*datacenter.Simulation, error) {
	if s.Nodes <= 0 || s.Days <= 0 {
		return nil, fmt.Errorf("chaos: scenario %q needs nodes and days", s.Name)
	}
	sc := core.SBConfig()
	sc.Shards = shards
	pol, err := core.NewScheduler(sc)
	if err != nil {
		return nil, err
	}
	pol.Tracer = sink
	return datacenter.New(datacenter.Config{
		Classes:      HeterogeneousClasses(s.Nodes),
		Policy:       pol,
		LambdaMin:    s.LambdaMin,
		LambdaMax:    s.LambdaMax,
		Seed:         s.Seed,
		TickInterval: s.TickSeconds,
		MTTR:         s.MTTR,
	})
}

// Run executes the scenario: build the sim at the given shard count,
// arm the fault plan, and drive the streaming trace — with a seeded
// jittered admission clock when jittered is set. Reports are
// byte-identical across shard counts and jitter settings; that
// identity is the harness's oracle, not an implementation accident.
func (s Scenario) Run(shards int, jittered bool) (metrics.Report, error) {
	return s.RunWithTrace(shards, jittered, nil)
}

// RunWithTrace is Run with a decision-trace sink installed on the
// solver. Tracing is a write-only side channel, so the report must be
// byte-identical to the untraced run at any verbosity — the scale
// suite asserts exactly that with the sink at TraceScores.
func (s Scenario) RunWithTrace(shards int, jittered bool, sink obs.TraceSink) (metrics.Report, error) {
	return s.RunWithObservers(shards, jittered, sink, nil)
}

// RunWithObservers is Run with every observability collector armed:
// the decision-trace sink on the solver, the tick-boundary accounting
// sampler, and per-job energy attribution. All three are write-only
// side channels, so the report must stay byte-identical to the bare
// run — the scale suite asserts exactly that at maximum verbosity.
func (s Scenario) RunWithObservers(shards int, jittered bool, sink obs.TraceSink, sampler func(series.Sample)) (metrics.Report, error) {
	sim, err := s.sim(shards, sink)
	if err != nil {
		return metrics.Report{}, err
	}
	if sampler != nil {
		sim.Sampler = sampler
		sim.AttributeEnergy = true
	}
	s.Plan().Arm(sim)
	src, err := workload.NewGeneratorSource(s.GeneratorConfig())
	if err != nil {
		return metrics.Report{}, err
	}
	var jit *simkit.Stream
	if jittered {
		jit = simkit.NewStream(s.Seed, "chaos-jitter")
	}
	return DriveSource(sim, src, jit)
}
