package chaos_test

import (
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"energysched"
	"energysched/internal/chaos"
	"energysched/internal/fleet"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/workload"
)

// TestScenario10kByteIdentity is the acceptance oracle at scale: the
// canonical 10k-node heterogeneous scenario — a two-day streaming
// trace with three one-shot node crashes and a flapping node armed as
// engine timers — must produce byte-identical reports when the solver
// runs serial, sharded at K=1, sharded at K=4, and when the admission
// clock is jittered into seeded partial steps. Any divergence means
// scale or faults leaked nondeterminism into the round engine.
func TestScenario10kByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node scenario; skipped in -short")
	}
	s := chaos.Scenario10k()
	serial, err := s.Run(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failures < s.Crashes {
		t.Fatalf("only %d node failures recorded, want >= %d injected crashes",
			serial.Failures, s.Crashes)
	}
	if serial.JobsCompleted == 0 || serial.JobsCompleted != serial.JobsTotal {
		t.Fatalf("scenario completed %d of %d jobs", serial.JobsCompleted, serial.JobsTotal)
	}
	for _, tc := range []struct {
		name     string
		shards   int
		jittered bool
	}{
		{"sharded-k1", 1, false},
		{"sharded-k4", 4, false},
		{"jittered-clock", 0, true},
	} {
		got, err := s.Run(tc.shards, tc.jittered)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != serial {
			t.Fatalf("%s diverged from serial run:\n got %+v\nwant %+v", tc.name, got, serial)
		}
	}

	// Maximum-verbosity tracing is a write-only side channel: the
	// traced sharded run's report is byte-identical to the serial
	// untraced one, while the ring actually recorded every round with
	// per-action score terms.
	ring := obs.NewTraceRing(obs.TraceScores, 4096)
	traced, err := s.RunWithTrace(4, false, ring)
	if err != nil {
		t.Fatalf("traced-scores: %v", err)
	}
	if traced != serial {
		t.Fatalf("traced-scores diverged from serial run:\n got %+v\nwant %+v", traced, serial)
	}
	if ring.Seq() == 0 {
		t.Fatal("scores-verbosity run recorded no traces")
	}

	// Every collector at once — scores-verbosity tracing, the
	// accounting sampler, and per-job energy attribution — is still a
	// write-only side channel: the fully observed sharded run matches
	// the bare serial run byte for byte while the series store actually
	// recorded a sample per housekeeping tick.
	ring2 := obs.NewTraceRing(obs.TraceScores, 4096)
	store := series.NewStore(0)
	observed, err := s.RunWithObservers(4, false, ring2, store.Add)
	if err != nil {
		t.Fatalf("observed: %v", err)
	}
	if observed != serial {
		t.Fatalf("fully observed run diverged from serial run:\n got %+v\nwant %+v", observed, serial)
	}
	if store.Count() == 0 {
		t.Fatal("observed run recorded no accounting samples")
	}
	if smp, ok := store.Latest(); !ok || smp.KWh <= 0 || smp.Completed == 0 {
		t.Fatalf("accounting samples look empty: %+v", smp)
	}
}

// fleetClasses is chaos.HeterogeneousClasses in the public
// energysched.NodeClass form the fleet config takes.
func fleetClasses(total int) []energysched.NodeClass { return energysched.ScaleClasses(total) }

// TestScenario10kFleetKillRecoverUnderFaults is the durable half of
// the acceptance oracle: the same 10k-node two-day trace streamed into
// a WAL-backed fleet (sharded solver, organic reliability failures on)
// with two live WAL faults mid-stream — a disk-full append and a torn
// write — and a process kill between them, must drain to a report
// byte-identical to an uninterrupted in-memory serial fleet fed the
// identical stream. Crash/recover, serial/sharded and live faults all
// collapse into one == comparison.
func TestScenario10kFleetKillRecoverUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node scenario; skipped in -short")
	}
	s := chaos.Scenario10k()
	classes := fleetClasses(s.Nodes)

	spec := func(j workload.Job) energysched.JobSpec {
		submit := j.Submit
		return energysched.JobSpec{
			Name: j.Name, CPU: j.CPU, Mem: j.Mem, Duration: j.Duration,
			Submit: &submit, DeadlineFactor: j.DeadlineFactor,
			FaultTolerance: j.FaultTolerance, Arch: j.Arch, Hypervisor: j.Hypervisor,
		}
	}

	// Reference: uninterrupted, in-memory, serial solver.
	ref, err := fleet.Open("ref", fleet.Config{
		Policy: "SB", Seed: s.Seed, Classes: classes, Failures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSrc, err := workload.NewGeneratorSource(s.GeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	total, err := ref.SubmitSource(refSrc, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: durable, sharded, with a scripted disk-full append
	// before the kill and a torn write after recovery. Both faults
	// must reject cleanly (full rollback) so a single retry readmits
	// the job and the acknowledged stream stays identical.
	// Skips are consumed sequentially (a step counts only calls made
	// after its predecessor fired): the disk-full lands ~1/4 into the
	// stream and the torn write ~1/2 a stream later, i.e. ~3/4 in —
	// one fault on each side of the mid-stream kill.
	script := &chaos.FaultScript{}
	script.FailOnce("append", total/4, errors.New("no space left on device"))
	script.FailOnce("append", total/2, fleet.ErrTornWrite)
	dir := filepath.Join(t.TempDir(), "chaos")
	cfg := fleet.Config{
		Policy: "SB", Seed: s.Seed, Classes: classes, Failures: true,
		Shards: 4, Dir: dir, SnapshotInterval: 0, WALSync: fleet.SyncOS,
		WALFault: script.Hook(),
	}
	f, err := fleet.Open("chaos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	submitOne := func(j workload.Job) {
		t.Helper()
		if _, err := f.Submit(spec(j)); err != nil {
			// A live WAL fault fired; the rollback must have been
			// clean, so the retry has to succeed.
			if _, err2 := f.Submit(spec(j)); err2 != nil {
				t.Fatalf("retry after live WAL fault failed: %v (fault: %v)", err2, err)
			}
			retried++
		}
	}
	src, err := workload.NewGeneratorSource(s.GeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		submitOne(j)
		streamed++
		if streamed == total/2 {
			// Kill mid-stream and recover from the WAL.
			f.Close()
			if f, err = fleet.Open("chaos", cfg); err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
		}
	}
	defer f.Close()
	if streamed != total {
		t.Fatalf("streamed %d jobs, reference admitted %d", streamed, total)
	}
	if script.Fired() != 2 || retried != 2 {
		t.Fatalf("fired %d faults with %d retries, want 2 and 2 (one each side of the kill)",
			script.Fired(), retried)
	}
	got, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chaos fleet diverged from uninterrupted reference:\n got %+v\nwant %+v", got, want)
	}
}

// TestScenario10kShardedAdmissionByteIdentity extends the scale oracle
// to the admission path: the same 10k-node two-day stream pushed
// through K∈{1,2,4} intake shards (batched through the admission
// router, not the bulk-load bypass) must drain byte-identical to the
// bulk-loaded serial reference. Admission sharding is a pure
// ingest-throughput knob — any divergence means the merge arbiter
// leaked request ordering into the engine.
func TestScenario10kShardedAdmissionByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node scenario; skipped in -short")
	}
	s := chaos.Scenario10k()
	classes := fleetClasses(s.Nodes)

	spec := func(j workload.Job) energysched.JobSpec {
		submit := j.Submit
		return energysched.JobSpec{
			Name: j.Name, CPU: j.CPU, Mem: j.Mem, Duration: j.Duration,
			Submit: &submit, DeadlineFactor: j.DeadlineFactor,
			FaultTolerance: j.FaultTolerance, Arch: j.Arch, Hypervisor: j.Hypervisor,
		}
	}

	// Reference: the bulk-load path (SubmitSource bypasses the router),
	// batches of 64.
	ref, err := fleet.Open("ref", fleet.Config{
		Policy: "SB", Seed: s.Seed, Classes: classes, Failures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSrc, err := workload.NewGeneratorSource(s.GeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	total, err := ref.SubmitSource(refSrc, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		f, err := fleet.Open("k", fleet.Config{
			Policy: "SB", Seed: s.Seed, Classes: classes, Failures: true,
			AdmitShards: k,
		})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		src, err := workload.NewGeneratorSource(s.GeneratorConfig())
		if err != nil {
			t.Fatal(err)
		}
		// The same 64-job batches, but through SubmitBatch — the full
		// shard-queue → merge → arbiter admission path.
		streamed := 0
		batch := make([]energysched.JobSpec, 0, 64)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := f.SubmitBatch(batch); err != nil {
				t.Fatalf("K=%d batch at %d: %v", k, streamed, err)
			}
			streamed += len(batch)
			batch = batch[:0]
		}
		for {
			j, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, spec(j))
			if len(batch) == 64 {
				flush()
			}
		}
		flush()
		if streamed != total {
			t.Fatalf("K=%d streamed %d jobs, reference admitted %d", k, streamed, total)
		}
		got, err := f.Drain()
		if err != nil {
			t.Fatalf("K=%d drain: %v", k, err)
		}
		f.Close()
		if got != want {
			t.Fatalf("K=%d admission diverged from the bulk-loaded reference:\n got %+v\nwant %+v", k, got, want)
		}
	}
}

// TestNewPlanDeterministic: the fault schedule is a pure function of
// its config — same seed, same crashes — and lands inside the loaded
// middle of the horizon, sorted by time.
func TestNewPlanDeterministic(t *testing.T) {
	cfg := chaos.PlanConfig{
		Seed: 11, Horizon: 48 * 3600, Nodes: 10_000,
		Crashes: 5, Flaps: 2, MTTR: 1800,
	}
	a, b := chaos.NewPlan(cfg), chaos.NewPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config drew different plans:\n a %+v\n b %+v", a, b)
	}
	if got, want := len(a.Crashes), cfg.Crashes+3*cfg.Flaps; got != want {
		t.Fatalf("plan has %d crashes, want %d", got, want)
	}
	flapFires := map[int]int{}
	for i, c := range a.Crashes {
		if c.Time < 0.1*cfg.Horizon {
			t.Fatalf("crash %d at %.0f fires before 10%% of the horizon", i, c.Time)
		}
		if c.Rank < 0 || c.Rank >= cfg.Nodes {
			t.Fatalf("crash %d has rank %d outside the fleet", i, c.Rank)
		}
		if i > 0 && a.Crashes[i].Time < a.Crashes[i-1].Time {
			t.Fatalf("plan not sorted by time at %d", i)
		}
		if c.Flap != 0 {
			flapFires[c.Flap]++
		}
	}
	for id, n := range flapFires {
		if n != 3 {
			t.Fatalf("flap group %d fires %d times, want 3", id, n)
		}
	}
	// A different seed must draw a different schedule.
	cfg.Seed = 12
	if reflect.DeepEqual(a, chaos.NewPlan(cfg)) {
		t.Fatal("different seeds drew identical plans")
	}
}

// TestFaultScript: each step fires exactly once after its skip count,
// steps for one op fire in registration order, and other ops pass
// through untouched.
func TestFaultScript(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	fs := &chaos.FaultScript{}
	fs.FailOnce("append", 2, errA)
	fs.FailOnce("append", 0, errB)
	hook := fs.Hook()

	if err := hook("sync"); err != nil {
		t.Fatalf("unmatched op failed: %v", err)
	}
	want := []error{nil, nil, errA, errB, nil}
	for i, w := range want {
		if got := hook("append"); got != w {
			t.Fatalf("append call %d = %v, want %v", i+1, got, w)
		}
	}
	if fs.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", fs.Fired())
	}
}
