// Package chaos is the scale/fault harness: seeded, fully
// deterministic schedules of node crashes and flapping, clock-pace
// jitter for the online driver, and scripted WAL faults — all aimed
// at re-proving the repo's byte-identity oracles (serial vs sharded
// rounds, kill/recover vs uninterrupted) at 10k-node / multi-day /
// faults-mid-round scale instead of toy sizes.
//
// Everything here is driven from inside the simulation engine: crash
// events are ordinary simkit timers, so a chaos run interleaves
// faults with arrivals, completions and rounds in one deterministic
// event order. Same seed, same schedule, same bytes.
package chaos

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"energysched/internal/cluster"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/simkit"
	"energysched/internal/workload"
)

// Crash is one scheduled node failure at an absolute virtual time.
// Targets resolve at fire time: Rank selects the Rank-th (mod count)
// currently-On node in ascending ID order, because at fleet scale
// almost every node is powered off and a uniformly drawn physical ID
// would nearly always be a no-op. Crashes sharing a non-zero Flap ID
// are one flapping node: the group's later fires target the physical
// node its first fire hit (which, freshly repaired, may well be off
// again — exactly the organic no-op semantics).
type Crash struct {
	Time float64
	Rank int
	Flap int
}

// Plan is a deterministic fault schedule, sorted by time.
type Plan struct {
	Crashes []Crash
}

// PlanConfig parameterizes NewPlan.
type PlanConfig struct {
	// Seed drives the schedule's random draws (stream "chaos").
	Seed int64
	// Horizon is the trace length in seconds; crashes land in the
	// middle 10–90% of it so they hit a loaded system.
	Horizon float64
	// Nodes is the fleet size crash targets are drawn from.
	Nodes int
	// Crashes is the number of independent one-shot node crashes.
	Crashes int
	// Flaps is the number of flapping nodes: each crashes three times,
	// spaced 1.5–2.5 MTTR apart, so every crash hits a node that has
	// already been repaired and reintegrated.
	Flaps int
	// MTTR must match the simulation's configured repair time.
	MTTR float64
}

// NewPlan draws a deterministic fault schedule: the same config
// always yields the same crashes.
func NewPlan(cfg PlanConfig) Plan {
	s := simkit.NewStream(cfg.Seed, "chaos")
	var p Plan
	for i := 0; i < cfg.Crashes; i++ {
		p.Crashes = append(p.Crashes, Crash{
			Time: cfg.Horizon * s.Uniform(0.1, 0.9),
			Rank: int(s.Float64() * float64(cfg.Nodes)),
		})
	}
	for i := 0; i < cfg.Flaps; i++ {
		t := cfg.Horizon * s.Uniform(0.1, 0.5)
		rank := int(s.Float64() * float64(cfg.Nodes))
		for k := 0; k < 3; k++ {
			p.Crashes = append(p.Crashes, Crash{Time: t, Rank: rank, Flap: i + 1})
			t += cfg.MTTR * s.Uniform(1.5, 2.5)
		}
	}
	sort.Slice(p.Crashes, func(i, j int) bool {
		if p.Crashes[i].Time != p.Crashes[j].Time {
			return p.Crashes[i].Time < p.Crashes[j].Time
		}
		return p.Crashes[i].Rank < p.Crashes[j].Rank
	})
	return p
}

// Arm schedules every crash as an engine timer on sim. Call once,
// before driving the simulation; the crashes then interleave with the
// workload in deterministic event order. Target resolution (see
// Crash) runs inside the engine against the instant's power states,
// so it is as deterministic as the events themselves.
func (p Plan) Arm(sim *datacenter.Simulation) {
	flapTarget := map[int]int{}
	for _, c := range p.Crashes {
		c := c
		sim.Engine().At(c.Time, func() {
			if c.Flap != 0 {
				if id, ok := flapTarget[c.Flap]; ok {
					sim.CrashNode(id)
					return
				}
			}
			if id := crashOnline(sim, c.Rank); id >= 0 && c.Flap != 0 {
				flapTarget[c.Flap] = id
			}
		})
	}
}

// crashOnline crashes the rank-th (mod count) currently-On node in
// ascending ID order, returning its ID, or -1 when no node is On.
func crashOnline(sim *datacenter.Simulation, rank int) int {
	on := make([]int, 0, 64)
	for _, n := range sim.Cluster().Nodes {
		if n.State == cluster.On {
			on = append(on, n.ID)
		}
	}
	if len(on) == 0 {
		return -1
	}
	id := on[rank%len(on)]
	sim.CrashNode(id)
	return id
}

// DriveSource streams a workload into sim and drains it, like
// datacenter.RunSource — but with an optionally jittered admission
// clock: instead of stepping straight to each job's submit time, the
// watermark advances in a seeded sequence of partial steps (clock-
// pace jitter). StepBefore fires events strictly before the target
// either way, so the final report must be byte-identical to the
// smooth drive — which makes jitter itself an oracle: any divergence
// means hidden state leaks through the pacing of observation points.
// Pass jitter == nil for the smooth drive.
func DriveSource(sim *datacenter.Simulation, src workload.JobSource, jitter *simkit.Stream) (metrics.Report, error) {
	sim.Start()
	count := 0
	var wm float64
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return metrics.Report{}, err
		}
		if _, err := sim.Inject(j); err != nil {
			return metrics.Report{}, err
		}
		count++
		if j.Submit <= wm {
			continue
		}
		if jitter == nil {
			wm = j.Submit
			sim.StepBefore(wm)
			continue
		}
		for target := j.Submit; wm < target; {
			wm += (target - wm) * jitter.Uniform(0.3, 1.0)
			if target-wm < 1e-9 {
				wm = target
			}
			sim.StepBefore(wm)
		}
	}
	if count == 0 {
		return metrics.Report{}, fmt.Errorf("chaos: workload source yielded no jobs")
	}
	return sim.Drain(), nil
}

// FaultScript builds deterministic fault hooks for the fleet WAL
// (fleet.Config.WALFault): each registered step fires exactly once,
// after skipping a given number of matching calls. The mutex makes
// the hook safe to consult from a fleet's event loop while the test
// goroutine registers no further steps.
type FaultScript struct {
	mu    sync.Mutex
	steps []faultStep
}

type faultStep struct {
	op    string
	skip  int
	err   error
	fired bool
}

// FailOnce arranges for the skip-th+1 call with this op to fail with
// err. Steps for the same op fire in registration order.
func (fs *FaultScript) FailOnce(op string, skip int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.steps = append(fs.steps, faultStep{op: op, skip: skip, err: err})
}

// Fired reports how many steps have fired so far.
func (fs *FaultScript) Fired() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for _, st := range fs.steps {
		if st.fired {
			n++
		}
	}
	return n
}

// Hook returns the function to install as fleet.Config.WALFault.
func (fs *FaultScript) Hook() func(op string) error {
	return func(op string) error {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		for i := range fs.steps {
			st := &fs.steps[i]
			if st.fired || st.op != op {
				continue
			}
			if st.skip > 0 {
				st.skip--
				return nil
			}
			st.fired = true
			return st.err
		}
		return nil
	}
}
