package energysched

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Accounting wire types and client calls: the energy/SLA time-series
// (GET /v1/fleets/{id}/series), the per-job lifecycle journeys
// (GET .../journeys, GET .../jobs/{id}/journey) and the SLO burn-rate
// alerts (GET /v1/alerts). These mirror the structs the server
// marshals; round-trip tests in accounting_test.go pin the two sides
// together.

// SeriesClassSample is one node class's slice of an accounting sample.
type SeriesClassSample struct {
	// Class is the node class name.
	Class string `json:"class"`
	// Watts is the class's aggregate power draw at the sample instant;
	// KWh its cumulative energy since the run started.
	Watts float64 `json:"watts"`
	KWh   float64 `json:"kwh"`
	// On counts nodes powered on (booting included), Working the
	// subset hosting active VMs, Off the nodes powered down.
	On      int `json:"on"`
	Working int `json:"working"`
	Off     int `json:"off"`
}

// SeriesSample is one accounting observation at a simulated-interval
// boundary.
type SeriesSample struct {
	// T is the virtual time of the sample, in seconds.
	T float64 `json:"t"`
	// Watts is the fleet's total power draw at T; KWh the cumulative
	// energy consumed up to T.
	Watts float64 `json:"watts"`
	KWh   float64 `json:"kwh"`
	// SLA is the mean SLA satisfaction percentage of completed jobs.
	SLA float64 `json:"sla_pct"`
	// Utilization is reserved CPU as a percentage of online capacity.
	Utilization float64 `json:"utilization_pct"`
	// Queue is the number of jobs waiting for placement, Running the
	// VMs currently executing (migrations included).
	Queue   int `json:"queue"`
	Running int `json:"running"`
	// On/Working/Off are fleet-wide node counts (On includes booting).
	On      int `json:"nodes_on"`
	Working int `json:"nodes_working"`
	Off     int `json:"nodes_off"`
	// Migrations and Completed are cumulative counters; their slope is
	// the churn.
	Migrations int `json:"migrations_total"`
	Completed  int `json:"completed_total"`
	// Classes is the per-node-class breakdown.
	Classes []SeriesClassSample `json:"classes,omitempty"`
}

// SeriesPoint is one (time, value) pair of a single-metric query.
type SeriesPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// SeriesSnapshot is the response of GET /v1/fleets/{id}/series: full
// samples by default, (t, v) points when the query named a metric.
type SeriesSnapshot struct {
	// Metric echoes the query's metric selection ("" = full samples).
	Metric string `json:"metric,omitempty"`
	// Count is the number of samples ever recorded, including those
	// evicted from the daemon's bounded ring.
	Count   uint64         `json:"count"`
	Samples []SeriesSample `json:"samples,omitempty"`
	Points  []SeriesPoint  `json:"points,omitempty"`
}

// SeriesQuery selects a slice of the accounting time-series.
type SeriesQuery struct {
	// Metric selects a single metric ("" = full samples): watts, kwh,
	// sla_pct, utilization_pct, queue, running, nodes_on,
	// nodes_working, nodes_off, migrations or completed.
	Metric string
	// Since drops samples before this virtual time (seconds).
	Since float64
	// Step downsamples to one sample per step-second bucket (0 = raw).
	Step float64
}

// JourneyStep is one lifecycle transition of a job, stamped with the
// simulation's virtual time.
type JourneyStep struct {
	// T is the virtual time of the transition, in seconds.
	T float64 `json:"t"`
	// Kind is submitted, placed, running, migrate, migrated, requeued,
	// completed or violated.
	Kind string `json:"kind"`
	// Node is the node involved (-1 when the step is not node-bound);
	// Dest is the migration destination (-1 otherwise).
	Node int `json:"node"`
	Dest int `json:"dest"`
	// Why is the solver's score comparison behind a placed or migrate
	// step, when decision tracing supplied one.
	Why *TraceAction `json:"why,omitempty"`
	// Satisfaction and EnergyKWh are set on terminal steps only.
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
	EnergyKWh    float64 `json:"energy_kwh,omitempty"`
}

// JobJourney is one job's recorded lifecycle audit span
// (GET /v1/fleets/{id}/jobs/{jobID}/journey).
type JobJourney struct {
	Job   int           `json:"job"`
	Steps []JourneyStep `json:"steps"`
	// Truncated reports that the per-job step cap was hit and later
	// steps were dropped from the stored record.
	Truncated bool `json:"truncated,omitempty"`
	// Outcome is "" while in flight, then "completed" or "violated".
	Outcome string `json:"outcome,omitempty"`
	// EnergyKWh is the host energy attributed to the job (live so far
	// for an in-flight job, final on a terminal record).
	EnergyKWh float64 `json:"energy_kwh"`
	// Satisfaction is the SLA satisfaction percentage after completion.
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
}

// JourneySummary is the steps-free form served by the journeys index.
type JourneySummary struct {
	Job          int     `json:"job"`
	Steps        int     `json:"steps"`
	Truncated    bool    `json:"truncated,omitempty"`
	Outcome      string  `json:"outcome,omitempty"`
	EnergyKWh    float64 `json:"energy_kwh"`
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
}

// JourneysSnapshot is the response of GET /v1/fleets/{id}/journeys.
type JourneysSnapshot struct {
	// Seq is the journey firehose's head sequence number.
	Seq      uint64           `json:"seq"`
	Journeys []JourneySummary `json:"journeys"`
}

// JourneyEvent is one journey firehose event
// (GET /v1/fleets/{id}/journeys?follow=1): a lifecycle step flattened
// with its ring sequence number and job ID.
type JourneyEvent struct {
	Seq uint64 `json:"seq"`
	Job int    `json:"job"`
	JourneyStep
}

// AlertStatus is one SLO objective's burn-rate verdict.
type AlertStatus struct {
	// Name is the objective's name; Metric the series metric it
	// watches.
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// State is "ok" or "firing".
	State string `json:"state"`
	// Since is the virtual time the current firing episode started
	// (only while firing).
	Since float64 `json:"since_s,omitempty"`
	// Value is the metric's latest observation.
	Value float64 `json:"value"`
	// ShortBurn and LongBurn are the burn rates of the two windows
	// (fraction of error budget consumed per window, >1 = over budget);
	// Budget is the objective's allowed violation fraction.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Budget    float64 `json:"budget"`
	// FiredTotal and ClearedTotal count state transitions, for
	// post-run assertions.
	FiredTotal   int `json:"fired_total"`
	ClearedTotal int `json:"cleared_total"`
}

// FleetAlert is one objective's verdict tagged with its fleet.
type FleetAlert struct {
	Fleet string `json:"fleet"`
	AlertStatus
}

// AlertsSnapshot is the response of GET /v1/alerts: the number of
// objectives currently firing and every objective's verdict.
type AlertsSnapshot struct {
	Firing int          `json:"firing"`
	Alerts []FleetAlert `json:"alerts"`
}

// Series fetches the fleet's accounting time-series
// (GET /v1/series?metric=&since=&step=).
func (c *Client) Series(ctx context.Context, q SeriesQuery) (SeriesSnapshot, error) {
	params := url.Values{}
	if q.Metric != "" {
		params.Set("metric", q.Metric)
	}
	if q.Since > 0 {
		params.Set("since", strconv.FormatFloat(q.Since, 'g', -1, 64))
	}
	if q.Step > 0 {
		params.Set("step", strconv.FormatFloat(q.Step, 'g', -1, 64))
	}
	path := c.apiPath("/series")
	if enc := params.Encode(); enc != "" {
		path += "?" + enc
	}
	var snap SeriesSnapshot
	err := c.call(ctx, http.MethodGet, path, nil, &snap)
	return snap, err
}

// Journeys fetches the fleet's journey index (GET /v1/journeys).
func (c *Client) Journeys(ctx context.Context) (JourneysSnapshot, error) {
	var snap JourneysSnapshot
	err := c.call(ctx, http.MethodGet, c.apiPath("/journeys"), nil, &snap)
	return snap, err
}

// Journey fetches one job's lifecycle audit span
// (GET /v1/jobs/{id}/journey). 404 when the daemon recorded no journey
// for the job — it was admitted before the daemon started, or evicted
// from the bounded store.
func (c *Client) Journey(ctx context.Context, id int) (JobJourney, error) {
	var j JobJourney
	err := c.call(ctx, http.MethodGet, c.apiPath("/jobs/"+strconv.Itoa(id)+"/journey"), nil, &j)
	return j, err
}

// JourneyTail subscribes to the fleet's journey firehose
// (GET /v1/journeys?follow=1, server-sent events) and calls fn for
// every lifecycle step until ctx is cancelled, the stream ends, or fn
// returns a non-nil error (which is returned). since > 0 replays the
// retained backlog from that sequence number first.
func (c *Client) JourneyTail(ctx context.Context, since uint64, fn func(ev JourneyEvent) error) error {
	path := c.apiPath("/journeys") + "?follow=1"
	if since > 0 {
		path += "&since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return &APIError{Status: resp.StatusCode, Message: "journey stream rejected"}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data := strings.TrimSpace(line[5:])
			if event == "gap" {
				// The requested resume point was evicted; resuming here
				// would silently skip steps. Terminal: re-sync instead.
				return parseSSEGap(data)
			}
			var ev JourneyEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("energysched: decoding journey step: %w", err)
			}
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Alerts fetches the SLO burn-rate verdicts: every fleet's objectives
// on a base client (GET /v1/alerts), one fleet's on a Fleet-scoped
// client (GET /v1/fleets/{id}/alerts).
func (c *Client) Alerts(ctx context.Context) (AlertsSnapshot, error) {
	path := "/v1/alerts"
	if c.prefix != "" {
		path = c.prefix + "/alerts"
	}
	var snap AlertsSnapshot
	err := c.call(ctx, http.MethodGet, path, nil, &snap)
	return snap, err
}
