module energysched

go 1.24
