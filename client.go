package energysched

// This file is the public surface of the energyschedd service: the
// wire types of its HTTP/JSON API and a small client for them. The
// server side lives in internal/server and marshals exactly these
// structs, so client and daemon cannot drift apart.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// JobSpec is the body of POST /v1/jobs: one HPC job to admit into the
// live scheduler.
type JobSpec struct {
	// Name is an optional label.
	Name string `json:"name,omitempty"`
	// CPU requirement in percent (100 = one core). Required.
	CPU float64 `json:"cpu_pct"`
	// Mem requirement in abstract units (a node offers 100).
	Mem float64 `json:"mem_units"`
	// Duration is the execution time on a dedicated machine, seconds.
	// Required.
	Duration float64 `json:"duration_s"`
	// Submit is the virtual arrival time in seconds. Omitted (nil), it
	// defaults to the daemon's current virtual time. It must not be in
	// the daemon's virtual past.
	Submit *float64 `json:"submit_s,omitempty"`
	// DeadlineFactor multiplies Duration to produce the SLA deadline
	// (0 = default 1.5, the middle of the paper's 1.2–2.0 band).
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`
	// FaultTolerance is the job's Ftol in [0, 1].
	FaultTolerance float64 `json:"fault_tolerance,omitempty"`
	// Arch pins the job to an architecture ("" = any).
	Arch string `json:"arch,omitempty"`
	// Hypervisor pins the job to a hypervisor ("" = any).
	Hypervisor string `json:"hypervisor,omitempty"`
}

// JobStatus describes one admitted job (GET /v1/jobs/{id}, and the
// response of POST /v1/jobs).
type JobStatus struct {
	ID             int     `json:"id"`
	Name           string  `json:"name,omitempty"`
	State          string  `json:"state"`
	Host           int     `json:"host"`       // hosting node, -1 = none
	Submit         float64 `json:"submit_s"`   // virtual arrival time
	Duration       float64 `json:"duration_s"` // dedicated-machine runtime
	Deadline       float64 `json:"deadline_s"` // absolute SLA deadline
	ProgressPct    float64 `json:"progress_pct"`
	Start          float64 `json:"start_s"`  // first running, -1 = never
	Finish         float64 `json:"finish_s"` // completion, -1 = not yet
	Migrations     int     `json:"migrations"`
	Restarts       int     `json:"restarts"`
	CPU            float64 `json:"cpu_pct"`
	Mem            float64 `json:"mem_units"`
	FaultTolerance float64 `json:"fault_tolerance,omitempty"`
}

// NodeStatus describes one physical node (part of GET /v1/cluster).
type NodeStatus struct {
	ID          int     `json:"id"`
	Class       string  `json:"class"`
	State       string  `json:"state"` // off | booting | on | down
	VMs         []int   `json:"vms,omitempty"`
	CPUReserved float64 `json:"cpu_reserved_pct"`
	MemReserved float64 `json:"mem_reserved_units"`
	Occupation  float64 `json:"occupation"`
	Watts       float64 `json:"watts"`
}

// ClusterStatus is the response of GET /v1/cluster: the fleet's power
// states, per-node VM placement and reservation sums.
type ClusterStatus struct {
	Now          float64      `json:"now_s"` // virtual time
	Sealed       bool         `json:"sealed"`
	Done         bool         `json:"done"`
	Queue        []int        `json:"queue,omitempty"` // queued VM IDs, FIFO
	NodesOn      int          `json:"nodes_on"`
	NodesWorking int          `json:"nodes_working"`
	TotalWatts   float64      `json:"total_watts"`
	Nodes        []NodeStatus `json:"nodes"`
}

// ServiceReport is the response of GET /v1/report and POST /v1/drain:
// the paper metrics accumulated so far (or finally, after a drain).
type ServiceReport struct {
	Policy        string  `json:"policy"`
	LambdaMin     float64 `json:"lambda_min_pct"`
	LambdaMax     float64 `json:"lambda_max_pct"`
	AvgWorking    float64 `json:"avg_working_nodes"`
	AvgOnline     float64 `json:"avg_online_nodes"`
	CPUHours      float64 `json:"cpu_hours"`
	EnergyKWh     float64 `json:"energy_kwh"`
	Satisfaction  float64 `json:"satisfaction_pct"`
	Delay         float64 `json:"delay_pct"`
	Migrations    int     `json:"migrations"`
	JobsCompleted int     `json:"jobs_completed"`
	JobsTotal     int     `json:"jobs_total"`
	Failures      int     `json:"failures"`
	SimEnd        float64 `json:"sim_end_s"`
	// Final is true once the workload has been drained: every admitted
	// job completed and the report will not change again.
	Final bool `json:"final"`
	// Table is the report rendered like a row of the paper's tables.
	Table string `json:"table"`
}

// SnapshotInfo is the response of POST /v1/snapshot and /v1/restore.
type SnapshotInfo struct {
	Path   string  `json:"path"`
	Jobs   int     `json:"jobs"`
	Now    float64 `json:"now_s"`
	Sealed bool    `json:"sealed"`
}

// FleetSpec is the body of POST /v1/fleets: a named fleet
// configuration. Unset fields inherit the daemon's base
// configuration (its flags).
type FleetSpec struct {
	// ID names the fleet; it appears in URLs and in the durable
	// layout (1-64 chars of [a-zA-Z0-9._-], starting alphanumeric).
	ID string `json:"id"`
	// Policy selects the scheduler ("" = daemon default).
	Policy string `json:"policy,omitempty"`
	// Seed drives the fleet's stochastic components (0 = default).
	Seed int64 `json:"seed,omitempty"`
	// LambdaMin, LambdaMax override the power-manager thresholds when
	// either is non-zero.
	LambdaMin float64 `json:"lambda_min,omitempty"`
	LambdaMax float64 `json:"lambda_max,omitempty"`
	// Pace overrides the clock pace: nil inherits, <= 0 is max pacing,
	// > 0 is virtual seconds per wall second.
	Pace *float64 `json:"pace,omitempty"`
	// Failures enables reliability-driven node crashes.
	Failures bool `json:"failures,omitempty"`
	// CheckpointSeconds > 0 checkpoints running VMs periodically.
	CheckpointSeconds float64 `json:"checkpoint_s,omitempty"`
	// AdaptiveTarget > 0 enables dynamic λmin adjustment.
	AdaptiveTarget float64 `json:"adaptive_target,omitempty"`
	// Shards overrides the solver's sharded parallel round engine:
	// 0 inherits the daemon's -shards setting, -1 uses one shard per
	// GOMAXPROCS, K >= 1 uses exactly K shards. Scheduling decisions
	// are byte-identical at any setting — this is a performance knob.
	Shards int `json:"shards,omitempty"`
	// SnapshotInterval > 0 overrides how many WAL records accumulate
	// before the fleet compacts them into a snapshot.
	SnapshotInterval int `json:"snapshot_interval,omitempty"`
	// TraceVerbosity overrides the fleet's decision-trace recording
	// level ("" inherits the daemon's -trace flag): "off", "rounds",
	// "actions" or "scores". Pure observability — any level leaves
	// scheduling byte-identical.
	TraceVerbosity string `json:"trace_verbosity,omitempty"`
	// TraceDepth > 0 overrides how many round traces the fleet retains
	// for GET /trace (default 256).
	TraceDepth int `json:"trace_depth,omitempty"`
	// SeriesDepth > 0 overrides how many accounting samples the fleet
	// retains for GET /series (default 4096).
	SeriesDepth int `json:"series_depth,omitempty"`
	// JourneyDepth > 0 overrides how many job lifecycle journeys the
	// fleet retains for GET /jobs/{id}/journey (default 2048).
	JourneyDepth int `json:"journey_depth,omitempty"`
	// AdmitShards > 0 overrides how many admission intake shards front
	// the fleet's event loop (default 1). Reports, traces, journeys and
	// series are byte-identical at any K — an ingest-throughput knob.
	AdmitShards int `json:"admit_shards,omitempty"`
	// AdmitQueue > 0 bounds each admission shard's queue (default 256);
	// a full queue sheds submits with 429 + Retry-After.
	AdmitQueue int `json:"admit_queue,omitempty"`
	// RateLimit > 0 throttles the fleet's admissions to this many jobs
	// per second; over-limit submits get 429 + Retry-After.
	RateLimit float64 `json:"rate_limit,omitempty"`
	// RateBurst > 0 sets the admission token bucket's capacity in jobs
	// (default one second's worth of RateLimit).
	RateBurst int `json:"rate_burst,omitempty"`
}

// WALStats describes a fleet's durable admission log (part of
// FleetInfo; only present when the daemon runs with -wal-dir).
type WALStats struct {
	// Records currently in the WAL — what a crash right now would
	// replay on restart.
	Records int `json:"records"`
	// Appended counts records written since the daemon opened the
	// fleet.
	Appended int `json:"appended"`
	// Replayed counts the WAL-tail records applied during crash
	// recovery when the daemon opened the fleet: the admissions after
	// the last compaction snapshot.
	Replayed int `json:"replayed"`
	// Snapshots counts compaction snapshots written since open.
	Snapshots int `json:"snapshots"`
	// TornTail reports that recovery dropped a torn/corrupt final
	// record (the expected artifact of a crash mid-append).
	TornTail bool `json:"torn_tail,omitempty"`
	// TruncatedBytes is how many torn/corrupt tail bytes recovery had
	// to discard (0 for a clean log).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// LastSnapshotUnix is the wall-clock time (Unix seconds) of the
	// fleet's newest compaction snapshot, 0 if none exists yet.
	LastSnapshotUnix int64 `json:"last_snapshot_unix,omitempty"`
}

// FleetInfo summarizes one hosted fleet (GET /v1/fleets and
// GET /v1/fleets/{id}).
type FleetInfo struct {
	ID     string  `json:"id"`
	Policy string  `json:"policy"`
	Seed   int64   `json:"seed"`
	Pace   float64 `json:"pace"` // <= 0 = max pacing
	Now    float64 `json:"now_s"`
	Sealed bool    `json:"sealed"`
	Done   bool    `json:"done"`
	Jobs   int     `json:"jobs"`
	// WAL is the durability layer's state; nil when the daemon runs
	// without -wal-dir.
	WAL *WALStats `json:"wal,omitempty"`
}

// ReplicationStatus describes one fleet's replication position (part
// of FleetStatus and HealthStatus).
type ReplicationStatus struct {
	// Gen is the fleet's timeline generation (bumped by API restores;
	// followers re-bootstrap on a generation change).
	Gen int64 `json:"gen"`
	// Offset is the fleet's logical log offset: admissions applied
	// plus the seal. Unlike a WAL byte offset it never rewinds on
	// compaction.
	Offset int64 `json:"offset"`
	// LeaderOffset is the leader's last-known offset for this fleet
	// (follower role only).
	LeaderOffset int64 `json:"leader_offset,omitempty"`
	// Lag is LeaderOffset - Offset (follower role only).
	Lag int64 `json:"lag,omitempty"`
	// LastContactUnix is when the follower last heard from the leader
	// for this fleet, Unix seconds (follower role only).
	LastContactUnix int64 `json:"last_contact_unix,omitempty"`
}

// FleetStatus is the response of GET /v1/fleets/{id}/status: the
// fleet's role and replication position.
type FleetStatus struct {
	ID string `json:"id"`
	// Role is "leader" or "follower".
	Role   string  `json:"role"`
	Now    float64 `json:"now_s"`
	Sealed bool    `json:"sealed"`
	Done   bool    `json:"done"`
	Jobs   int     `json:"jobs"`
	// Replication is the fleet's log position.
	Replication ReplicationStatus `json:"replication"`
	// WAL mirrors FleetInfo.WAL; nil without -wal-dir.
	WAL *WALStats `json:"wal,omitempty"`
	// LastSnapshotAgeSeconds is the age of the newest compaction
	// snapshot, -1 if none exists.
	LastSnapshotAgeSeconds float64 `json:"last_snapshot_age_s"`
}

// HealthStatus is the response of GET /v1/health: the daemon's role
// and, for a follower, its readiness to be promoted.
type HealthStatus struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Ready means the daemon can serve its role: a leader is always
	// ready; a follower is ready once every known fleet is synced
	// (lag 0) and the leader has been heard from recently.
	Ready bool `json:"ready"`
	// Fleets counts hosted (or mirrored) fleets.
	Fleets int `json:"fleets"`
	// Leader is the leader URL a follower replicates from.
	Leader string `json:"leader,omitempty"`
	// MaxLag is the worst per-fleet replication lag (follower only).
	MaxLag int64 `json:"max_lag,omitempty"`
	// Replication lists per-fleet positions (follower only).
	Replication map[string]ReplicationStatus `json:"replication,omitempty"`
	// Version is the daemon's module version from its embedded build
	// info ("(devel)" for plain builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS revision the daemon was built from (12 hex
	// digits, "+dirty" when the checkout had local modifications);
	// empty when the build embedded no VCS info.
	Revision string `json:"revision,omitempty"`
	// AlertsFiring counts SLO burn-rate alerts currently firing across
	// every hosted fleet (see GET /v1/alerts).
	AlertsFiring int `json:"alerts_firing"`
}

// PromoteInfo is the response of POST /v1/promote: the follower has
// sealed catch-up and now serves as leader.
type PromoteInfo struct {
	Role string `json:"role"` // always "leader" on success
	// Fleets maps fleet ID to its log offset at promotion.
	Fleets map[string]int64 `json:"fleets"`
}

// TraceScoreTerms is the per-action score decomposition recorded at
// "scores" verbosity: the components of the paper's placement score
// for the chosen target.
type TraceScoreTerms struct {
	// Base is the time-independent half (resource fits, concurrency,
	// power, fault terms) of the chosen cell.
	Base float64 `json:"base"`
	// Time is the time-dependent half (virtualization overhead + SLA).
	Time float64 `json:"time"`
	// Power is the green-energy/consolidation term in isolation.
	Power float64 `json:"power"`
	// SLA is the deadline-satisfaction term in isolation.
	SLA float64 `json:"sla"`
}

// TraceAction is one applied solver action and why it won (present at
// "actions" verbosity and up).
type TraceAction struct {
	// Kind is "place" (from queue) or "migrate".
	Kind string `json:"kind"`
	// VM is the VM's ID.
	VM int `json:"vm"`
	// From is the source node ID, -1 for a placement from the queue.
	From int `json:"from"`
	// To is the chosen target node ID.
	To int `json:"to"`
	// Current is the score of leaving the VM where it is; Chosen is the
	// winning target's score; Gain is the margin Chosen − Current (more
	// negative is better — the solver minimizes).
	Current float64 `json:"current"`
	Chosen  float64 `json:"chosen"`
	Gain    float64 `json:"gain"`
	// Terms is the score breakdown ("scores" verbosity only).
	Terms *TraceScoreTerms `json:"terms,omitempty"`
}

// TraceRound is one solver round's structured decision trace.
type TraceRound struct {
	// Seq is the ring sequence number, monotonically increasing per
	// fleet.
	Seq uint64 `json:"seq"`
	// Round is the scheduler's round counter after this round.
	Round int `json:"round"`
	// Now is the simulation's virtual time at the round, in seconds.
	Now float64 `json:"now"`
	// Solver names the engine: "naive", "incremental" or "sharded";
	// Shards is the shard count for a sharded round (0 otherwise).
	Solver string `json:"solver"`
	Shards int    `json:"shards,omitempty"`
	// WallNanos is the wall-clock duration of the whole round.
	WallNanos int64 `json:"wall_ns"`
	// Hosts and Candidates size the round's score matrix.
	Hosts      int `json:"hosts"`
	Candidates int `json:"candidates"`
	// Moves is the number of actions the hill climber applied;
	// ScoreEvals counts full score evaluations this round.
	Moves      int `json:"moves"`
	ScoreEvals int `json:"score_evals"`
	// Carry/dirty statistics: matrix cells reused from the previous
	// round, and rows/columns whose carry keys went stale.
	ReusedCells int `json:"reused_cells"`
	StaleRows   int `json:"stale_rows"`
	StaleCols   int `json:"stale_cols"`
	// LimitHit reports that the round stopped on the iteration cap
	// rather than convergence.
	LimitHit bool `json:"limit_hit,omitempty"`
	// Actions holds the per-action why records ("actions" verbosity
	// and up).
	Actions []TraceAction `json:"actions,omitempty"`
}

// TraceSnapshot is the response of GET /v1/fleets/{id}/trace: the
// ring's head sequence, the recording level, and the retained round
// traces oldest first.
type TraceSnapshot struct {
	Seq       uint64       `json:"seq"`
	Verbosity string       `json:"verbosity"`
	Traces    []TraceRound `json:"traces"`
}

// APIError is the error body every endpoint returns on failure.
type APIError struct {
	Status  int    `json:"status"`
	Message string `json:"error"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("energyschedd: %s (http %d)", e.Message, e.Status)
}

// EventGap describes an SSE resume gap: the daemon evicted the events
// between the requested resume point and the oldest it still retains.
type EventGap struct {
	// Requested is the sequence number the consumer resumed from
	// (Last-Event-ID / ?since).
	Requested uint64 `json:"requested"`
	// Oldest is the oldest retained sequence number the stream
	// continues with (0 when nothing is retained).
	Oldest uint64 `json:"oldest"`
}

// GapError is returned by Events, TraceTail and JourneyTail when the
// daemon signals that the requested resume point was evicted from its
// ring: the stream is NOT contiguous with what the consumer saw
// before. Re-sync from a snapshot (Report, TraceSnapshot, Journeys)
// or restart the tail with since=0 instead of trusting the resumed
// stream.
type GapError struct {
	Gap EventGap
}

// Error implements the error interface.
func (e *GapError) Error() string {
	return fmt.Sprintf("energyschedd: stream gap: events (%d, %d) evicted; re-sync from a snapshot",
		e.Gap.Requested, e.Gap.Oldest)
}

// parseSSEGap decodes a gap event's payload into a GapError.
func parseSSEGap(data string) error {
	var g EventGap
	if err := json.Unmarshal([]byte(data), &g); err != nil {
		return fmt.Errorf("energysched: decoding gap event: %w", err)
	}
	return &GapError{Gap: g}
}

// Client talks to an energyschedd daemon. The zero prefix addresses
// the PR 3 alias routes — i.e. the daemon's "default" fleet; Fleet
// rebinds the same methods to a named fleet.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:7781".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
	// Timeout bounds each individual request attempt (not the whole
	// retried call). Zero means no per-request deadline beyond the
	// caller's context.
	Timeout time.Duration
	// Retry enables transparent retries of failed requests. Nil (the
	// default) means no retries: every attempt's outcome is returned
	// to the caller as-is.
	Retry *RetryPolicy

	// prefix is the API mount point: "" means "/v1" (the default
	// fleet), Fleet sets "/v1/fleets/{id}".
	prefix string
}

// RetryPolicy configures the client's opt-in retry behavior: full-
// jitter exponential backoff, honoring 429 Retry-After from the
// daemon's fleet cap. Only transport errors and transient statuses
// (429, 502, 503, 504) are retried — 503 deliberately so: a follower
// rejects writes with 503, and retrying rides out a promotion. Every
// other API error surfaces immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try
	// included). Values < 2 disable retries.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
}

// retryDelay returns the sleep before attempt (1-based, i.e. after
// the attempt-th try failed), applying full jitter; retryAfter, when
// positive, overrides the computed backoff (the server knows best).
func (p *RetryPolicy) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter: uniform in (0, d]. Decorrelates a thundering herd
	// of clients retrying against a freshly promoted leader.
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// retryableStatus reports whether an HTTP status is worth retrying:
// the PR 5 fleet-cap 429 and the transient 5xx family a follower or
// proxy emits mid-failover.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter decodes a Retry-After header. RFC 9110 §10.2.3
// allows both forms: delta-seconds and an HTTP-date. Negative deltas
// and past dates clamp to 0 (retry immediately) rather than being
// ignored or going negative.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Fleet returns a client whose job/cluster/report/drain/snapshot/
// restore/events calls address the named fleet
// (/v1/fleets/{id}/...). The registry calls (CreateFleet, Fleets,
// GetFleet, DeleteFleet) are fleet-independent and work on any
// client.
func (c *Client) Fleet(id string) *Client {
	return &Client{
		BaseURL:    c.BaseURL,
		HTTPClient: c.HTTPClient,
		Timeout:    c.Timeout,
		Retry:      c.Retry,
		prefix:     "/v1/fleets/" + url.PathEscape(id),
	}
}

// apiPath mounts a per-fleet route at the client's prefix.
func (c *Client) apiPath(p string) string {
	if c.prefix == "" {
		return "/v1" + p
	}
	return c.prefix + p
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) call(ctx context.Context, method, path string, in, out interface{}) error {
	var encoded []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("energysched: encoding %s %s: %w", method, path, err)
		}
		encoded = b
	}
	attempts := 1
	if c.Retry != nil && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		err, retryAfter, retryable := c.attempt(ctx, method, path, encoded, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= attempts {
			return lastErr
		}
		select {
		case <-time.After(c.Retry.retryDelay(attempt, retryAfter)):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// attempt performs one HTTP round trip. retryable marks transport
// errors and retryable statuses; retryAfter carries a server-provided
// backoff hint.
func (c *Client) attempt(ctx context.Context, method, path string, encoded []byte, hasBody bool, out interface{}) (err error, retryAfter time.Duration, retryable bool) {
	actx := ctx
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(encoded)
	}
	req, err := http.NewRequestWithContext(actx, method, c.BaseURL+path, body)
	if err != nil {
		return err, 0, false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// A transport failure (refused, reset, attempt timeout) is
		// retryable unless the caller's own context is done.
		return err, 0, ctx.Err() == nil
	}
	// Drain before closing: a body closed with unread bytes (the
	// decoder's trailing newline, a retried 429/503's error payload)
	// forces the transport to tear down the connection instead of
	// returning it to the keep-alive pool — so a retry loop would open
	// a fresh connection per attempt, exactly under the overload that
	// triggers retries. The drain is capped; an implausibly large
	// remainder is cheaper to abandon than to read.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, apiErr) != nil || apiErr.Message == "" {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr, parseRetryAfter(resp.Header.Get("Retry-After")), retryableStatus(resp.StatusCode)
	}
	if out == nil {
		return nil, 0, false // deferred drain consumes the body
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return err, 0, false
	}
	return nil, 0, false
}

// SubmitJob admits a job (POST /v1/jobs) and returns its status,
// including the assigned ID.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.call(ctx, http.MethodPost, c.apiPath("/jobs"), spec, &st)
	return st, err
}

// SubmitJobs admits a batch atomically, in order, in a single
// event-loop turn of the fleet (POST /v1/jobs with a JSON array):
// either every job in the batch is admitted or none is. Submit times
// within a batch must be non-decreasing. At max pacing, a batch is
// byte-identical to submitting the same jobs sequentially.
func (c *Client) SubmitJobs(ctx context.Context, specs []JobSpec) ([]JobStatus, error) {
	var st []JobStatus
	err := c.call(ctx, http.MethodPost, c.apiPath("/jobs"), specs, &st)
	return st, err
}

// CreateFleet registers and starts a new fleet (POST /v1/fleets).
func (c *Client) CreateFleet(ctx context.Context, spec FleetSpec) (FleetInfo, error) {
	var info FleetInfo
	err := c.call(ctx, http.MethodPost, "/v1/fleets", spec, &info)
	return info, err
}

// Fleets lists every hosted fleet (GET /v1/fleets).
func (c *Client) Fleets(ctx context.Context) ([]FleetInfo, error) {
	var out []FleetInfo
	err := c.call(ctx, http.MethodGet, "/v1/fleets", nil, &out)
	return out, err
}

// GetFleet fetches one fleet's summary, including its WAL stats
// (GET /v1/fleets/{id}).
func (c *Client) GetFleet(ctx context.Context, id string) (FleetInfo, error) {
	var info FleetInfo
	err := c.call(ctx, http.MethodGet, "/v1/fleets/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteFleet stops a fleet and removes it — including its durable
// state (DELETE /v1/fleets/{id}).
func (c *Client) DeleteFleet(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/fleets/"+url.PathEscape(id), nil, nil)
}

// Job fetches one job's status (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id int) (JobStatus, error) {
	var st JobStatus
	err := c.call(ctx, http.MethodGet, c.apiPath("/jobs/"+strconv.Itoa(id)), nil, &st)
	return st, err
}

// Jobs lists every admitted job (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var st []JobStatus
	err := c.call(ctx, http.MethodGet, c.apiPath("/jobs"), nil, &st)
	return st, err
}

// Cluster fetches the fleet status (GET /v1/cluster).
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	var st ClusterStatus
	err := c.call(ctx, http.MethodGet, c.apiPath("/cluster"), nil, &st)
	return st, err
}

// Report fetches the paper metrics accumulated so far (GET /v1/report).
func (c *Client) Report(ctx context.Context) (ServiceReport, error) {
	var rep ServiceReport
	err := c.call(ctx, http.MethodGet, c.apiPath("/report"), nil, &rep)
	return rep, err
}

// Drain seals the workload, runs the simulation until every admitted
// job completes, and returns the final report (POST /v1/drain).
func (c *Client) Drain(ctx context.Context) (ServiceReport, error) {
	var rep ServiceReport
	err := c.call(ctx, http.MethodPost, c.apiPath("/drain"), nil, &rep)
	return rep, err
}

// Snapshot checkpoints the daemon's state to disk (POST /v1/snapshot).
// An empty path lets the daemon pick one under its snapshot directory.
func (c *Client) Snapshot(ctx context.Context, path string) (SnapshotInfo, error) {
	var info SnapshotInfo
	err := c.call(ctx, http.MethodPost, c.apiPath("/snapshot"), map[string]string{"path": path}, &info)
	return info, err
}

// Restore replaces the daemon's state with a snapshot's (POST
// /v1/restore): the admitted-job log is replayed deterministically up
// to the snapshot's virtual time.
func (c *Client) Restore(ctx context.Context, path string) (SnapshotInfo, error) {
	var info SnapshotInfo
	err := c.call(ctx, http.MethodPost, c.apiPath("/restore"), map[string]string{"path": path}, &info)
	return info, err
}

// Health fetches the daemon's role and readiness (GET /v1/health).
func (c *Client) Health(ctx context.Context) (HealthStatus, error) {
	var h HealthStatus
	err := c.call(ctx, http.MethodGet, "/v1/health", nil, &h)
	return h, err
}

// FleetStatus fetches one fleet's role and replication position
// (GET /v1/fleets/{id}/status).
func (c *Client) FleetStatus(ctx context.Context, id string) (FleetStatus, error) {
	var st FleetStatus
	err := c.call(ctx, http.MethodGet, "/v1/fleets/"+url.PathEscape(id)+"/status", nil, &st)
	return st, err
}

// Promote flips a follower to serving leader (POST /v1/promote): it
// stops replicating, seals catch-up on every mirrored fleet, and
// starts accepting writes. A daemon that is already the leader
// responds 409.
func (c *Client) Promote(ctx context.Context) (PromoteInfo, error) {
	var info PromoteInfo
	err := c.call(ctx, http.MethodPost, "/v1/promote", nil, &info)
	return info, err
}

// Trace fetches the fleet's retained solver round traces with
// sequence number > since (GET /v1/trace?since=N). The daemon keeps a
// bounded ring (256 rounds by default), so a poller passing the last
// Seq it saw reads each round exactly once.
func (c *Client) Trace(ctx context.Context, since uint64) (TraceSnapshot, error) {
	path := c.apiPath("/trace")
	if since > 0 {
		path += "?since=" + strconv.FormatUint(since, 10)
	}
	var snap TraceSnapshot
	err := c.call(ctx, http.MethodGet, path, nil, &snap)
	return snap, err
}

// SetTraceVerbosity retunes the fleet's decision-trace recording
// level at runtime (POST /v1/trace/verbosity): "off", "rounds",
// "actions" or "scores". Pure observability — scheduling stays
// byte-identical at any level.
func (c *Client) SetTraceVerbosity(ctx context.Context, level string) error {
	return c.call(ctx, http.MethodPost, c.apiPath("/trace/verbosity"),
		map[string]string{"verbosity": level}, nil)
}

// TraceTail subscribes to the fleet's decision-trace stream
// (GET /v1/trace?follow=1, server-sent events) and calls fn for every
// solver round until ctx is cancelled, the stream ends, or fn returns
// a non-nil error (which is returned). since > 0 replays the retained
// backlog from that sequence number first.
func (c *Client) TraceTail(ctx context.Context, since uint64, fn func(rt TraceRound) error) error {
	path := c.apiPath("/trace") + "?follow=1"
	if since > 0 {
		path += "&since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return &APIError{Status: resp.StatusCode, Message: "trace stream rejected"}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data := strings.TrimSpace(line[5:])
			if event == "gap" {
				// The requested resume point was evicted; the tail would
				// silently skip rounds. Terminal: let the caller re-sync.
				return parseSSEGap(data)
			}
			var rt TraceRound
			if err := json.Unmarshal([]byte(data), &rt); err != nil {
				return fmt.Errorf("energysched: decoding trace: %w", err)
			}
			if err := fn(rt); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Events subscribes to the daemon's event stream (GET /v1/events,
// server-sent events) and calls fn for every event until ctx is
// cancelled, the stream ends, or fn returns a non-nil error (which is
// returned). since > 0 requests replay from that sequence number (the
// daemon keeps a bounded ring of recent events).
func (c *Client) Events(ctx context.Context, since uint64, fn func(seq uint64, e Event) error) error {
	path := c.apiPath("/events")
	if since > 0 {
		path += "?since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return &APIError{Status: resp.StatusCode, Message: "event stream rejected"}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var seq uint64
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id:"):
			seq, _ = strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data := strings.TrimSpace(line[5:])
			if event == "gap" {
				// The requested resume point was evicted; resuming here
				// would silently skip events. Terminal: re-sync instead.
				return parseSSEGap(data)
			}
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return fmt.Errorf("energysched: decoding event: %w", err)
			}
			if err := fn(seq, e); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
